#include "trace/csv_sink.hpp"

#include <ostream>

namespace prosim {

namespace {
// Window-length histogram range: wait windows on the bundled workloads run
// from tens to a few thousand cycles; 64 bins of 64 cycles keeps the
// interesting range resolved and parks the tail in the overflow bin.
constexpr double kHistLo = 0.0;
constexpr double kHistHi = 4096.0;
constexpr int kHistBins = 64;
}  // namespace

WindowCsvSink::WindowCsvSink()
    : barrier_hist_(kHistLo, kHistHi, kHistBins),
      finish_hist_(kHistLo, kHistHi, kHistBins) {}

void WindowCsvSink::on_warp_state(int sm, int warp, WarpState prev,
                                  Cycle since, WarpState next, Cycle now) {
  (void)next;
  if (prev != WarpState::kBarrierWait && prev != WarpState::kFinishWait)
    return;
  if (since == now) return;
  windows_.push_back({prev, sm, warp, since, now});
  Histogram& hist =
      prev == WarpState::kBarrierWait ? barrier_hist_ : finish_hist_;
  hist.add(static_cast<double>(now - since));
}

void WindowCsvSink::write_csv(std::ostream& os) const {
  os << "kind,sm,warp,start,end,length\n";
  for (const Window& w : windows_) {
    os << warp_state_name(w.kind) << ',' << w.sm << ',' << w.warp << ','
       << w.start << ',' << w.end << ',' << (w.end - w.start) << '\n';
  }
}

namespace {
void write_hist(std::ostream& os, const char* kind, const Histogram& hist) {
  if (hist.underflow() != 0)
    os << kind << ",-inf," << hist.bin_lo(0) << ',' << hist.underflow()
       << '\n';
  for (int b = 0; b < hist.num_bins(); ++b) {
    if (hist.bin_count(b) == 0) continue;
    os << kind << ',' << hist.bin_lo(b) << ',' << hist.bin_hi(b) << ','
       << hist.bin_count(b) << '\n';
  }
  if (hist.overflow() != 0)
    os << kind << ',' << hist.bin_hi(hist.num_bins() - 1) << ",inf,"
       << hist.overflow() << '\n';
}
}  // namespace

void WindowCsvSink::write_histograms_csv(std::ostream& os) const {
  os << "kind,bin_lo,bin_hi,count\n";
  write_hist(os, "barrier_wait", barrier_hist_);
  write_hist(os, "finish_wait", finish_hist_);
}

}  // namespace prosim
