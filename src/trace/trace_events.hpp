// Warp-level observability event model (docs/OBSERVABILITY.md).
//
// The SM issue stage classifies, per hardware scheduler per cycle, why it
// could or could not issue (StallCause — an exact refinement of the legacy
// SmStats idle/scoreboard/pipeline taxonomy), and tracks every warp slot's
// scheduling state (WarpState). A TraceSink attached to the Gpu receives
// each classification and state transition; with no sink attached the
// instrumentation is a single pointer test per cycle phase, and the
// event-driven fast-forward stays valid: quiet spans are bulk-applied as
// one on_sched_cycles(count) call, and warp states are provably constant
// across a skipped span so no per-warp events are needed.
//
// Tracing is strictly observational: sinks never feed back into the
// simulation, so results are bit-identical with tracing on or off.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace prosim {

/// Coarse legacy stall classes — the SmStats counters the paper's
/// Figures 1/5 and Table III are built from.
enum class LegacyStallClass : std::uint8_t {
  kIssued = 0,
  kIdle,
  kScoreboard,
  kPipeline,
};

/// Per-hardware-scheduler-cycle issue outcome. Exactly one cause is
/// reported per scheduler per cycle; legacy_stall_class() maps each cause
/// onto the coarse counter it reconciles with, so summing causes by class
/// reproduces SmStats::{idle,scoreboard,pipeline}_stalls bit-exactly.
enum class StallCause : std::uint8_t {
  kIssued = 0,     ///< a warp issued (not a stall)
  kFuBusy,         ///< pipeline: ready candidates, functional unit busy
  kScoreboardMem,  ///< scoreboard: blocked on an in-flight load register
  kScoreboardAlu,  ///< scoreboard: blocked on an ALU/SFU/smem writeback
  kSpinWait,       ///< scoreboard: every blocked candidate busy-waits in a
                   ///< detected spin loop (lock/flag polling)
  kBarrierWait,    ///< idle: the scheduler's warps are parked at a barrier
  kFinishWait,     ///< idle: warps finished, TB waiting for its siblings
  kFetch,          ///< idle: instruction buffers refilling
  kThrottled,      ///< idle: live warps parked outside the policy's
                   ///< consider mask (Two-Level pending set)
  kNoWarp,         ///< idle: no allocated warp at all (startup / TB drain)
};
inline constexpr int kNumStallCauses = 10;

constexpr LegacyStallClass legacy_stall_class(StallCause cause) {
  switch (cause) {
    case StallCause::kIssued:
      return LegacyStallClass::kIssued;
    case StallCause::kFuBusy:
      return LegacyStallClass::kPipeline;
    case StallCause::kScoreboardMem:
    case StallCause::kScoreboardAlu:
    case StallCause::kSpinWait:
      return LegacyStallClass::kScoreboard;
    case StallCause::kBarrierWait:
    case StallCause::kFinishWait:
    case StallCause::kFetch:
    case StallCause::kThrottled:
    case StallCause::kNoWarp:
      return LegacyStallClass::kIdle;
  }
  return LegacyStallClass::kIdle;
}

const char* stall_cause_name(StallCause cause);

/// Scheduling state of one warp slot, sampled once per executed cycle.
/// The lane view of the paper's Figures 3/7: each warp is a track whose
/// colored slices are these states.
enum class WarpState : std::uint8_t {
  kUnallocated = 0,  ///< slot empty (not drawn in the lane view)
  kIssued,           ///< issued an instruction this cycle
  kEligible,         ///< ready to issue but lost arbitration
  kScoreboard,       ///< blocked on an ALU/SFU/smem writeback register
  kMemPending,       ///< blocked on an outstanding memory load register
  kSpinWait,         ///< busy-waiting in a detected spin loop
  kFuBusy,           ///< instruction ready but its functional unit is busy
  kFetch,            ///< instruction buffer refilling (fetch/redirect)
  kBarrierWait,      ///< parked at a barrier (§II-B barrierWait window)
  kFinishWait,       ///< retired, TB waiting for siblings (finishWait)
};
inline constexpr int kNumWarpStates = 10;

const char* warp_state_name(WarpState state);

/// Receiver of warp-level observability events. All hooks default to
/// no-ops so sinks implement only what they consume. One sink instance
/// observes the whole GPU (events carry the SM id); sinks are invoked from
/// the single simulation thread only.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Sinks that return false here let the SM skip the per-warp state pass
  /// entirely (the stall-attribution accumulator only needs the
  /// per-scheduler classification).
  virtual bool wants_warp_states() const { return true; }

  /// One hardware-scheduler cycle classified as `cause` — or `count`
  /// identical cycles when the event-driven loop bulk-applies a quiet span
  /// (every input to the classification is provably constant across it).
  virtual void on_sched_cycles(int /*sm*/, int /*sched*/,
                               StallCause /*cause*/, Cycle /*count*/) {}

  /// Warp `warp` on SM `sm` left state `prev` (entered at `since`) for
  /// `next` at cycle `now`; the closed slice is [since, now).
  virtual void on_warp_state(int /*sm*/, int /*warp*/, WarpState /*prev*/,
                             Cycle /*since*/, WarpState /*next*/,
                             Cycle /*now*/) {}

  virtual void on_tb_launch(int /*sm*/, int /*ctaid*/, Cycle /*now*/) {}
  virtual void on_tb_retire(int /*sm*/, int /*ctaid*/, Cycle /*start*/,
                            Cycle /*end*/) {}

  /// A PRO (or adaptive-PRO) THRESHOLD re-sort took effect on SM `sm`.
  virtual void on_pro_sort(int /*sm*/, Cycle /*now*/) {}

  /// The simulation completed at cycle `end`.
  virtual void on_sim_end(Cycle /*end*/) {}
};

}  // namespace prosim
