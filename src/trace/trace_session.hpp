// TraceSession: composes the concrete sinks behind one TraceSink* that
// Gpu::set_trace_sink() accepts, and owns their lifetime and output files.
//
// Pay-for-use contract: a session with no modes enabled yields a null
// sink pointer, so the simulator core takes its untraced fast path (no
// virtual calls, fast-forward intact). With only stall attribution
// enabled, wants_warp_states() stays false and the per-warp state pass
// is skipped as well.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/csv_sink.hpp"
#include "trace/stall_attribution.hpp"
#include "trace/trace_events.hpp"
#include "trace/warp_lane_trace.hpp"

namespace prosim {

/// Which observability products to collect during a run.
struct TraceOptions {
  bool stall_attribution = false;  ///< per-cause/per-SM StallBreakdown
  bool warp_lanes = false;         ///< Chrome-trace warp timeline
  bool windows = false;            ///< barrier/finish wait-window CSV

  bool any() const { return stall_attribution || warp_lanes || windows; }
};

/// Fan-out sink: forwards every event to each child. wants_warp_states()
/// is the OR of the children, so attribution-only tees stay cheap.
class TraceTee final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  bool wants_warp_states() const override;
  void on_sched_cycles(int sm, int sched, StallCause cause,
                       Cycle count) override;
  void on_warp_state(int sm, int warp, WarpState prev, Cycle since,
                     WarpState next, Cycle now) override;
  void on_tb_launch(int sm, int ctaid, Cycle now) override;
  void on_tb_retire(int sm, int ctaid, Cycle start, Cycle end) override;
  void on_pro_sort(int sm, Cycle now) override;
  void on_sim_end(Cycle end) override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Owns the sinks selected by TraceOptions and hands out the single
/// TraceSink* to attach to a Gpu. Accessors return nullptr for sinks
/// that were not enabled.
class TraceSession {
 public:
  explicit TraceSession(const TraceOptions& opts);

  /// The sink to pass to Gpu::set_trace_sink() / simulate(). Null when
  /// no mode is enabled — the caller can pass it through unconditionally.
  TraceSink* sink() { return sink_; }

  const StallAttributionSink* attribution() const {
    return attribution_.get();
  }
  const WarpLaneTraceSink* warp_lanes() const { return warp_lanes_.get(); }
  const WindowCsvSink* windows() const { return windows_.get(); }

  /// File writers; return false (and report via Err) when the sink is
  /// disabled or the path cannot be opened.
  bool write_warp_lanes_file(const std::string& path) const;
  bool write_windows_csv_file(const std::string& path) const;
  bool write_window_histograms_file(const std::string& path) const;

 private:
  std::unique_ptr<StallAttributionSink> attribution_;
  std::unique_ptr<WarpLaneTraceSink> warp_lanes_;
  std::unique_ptr<WindowCsvSink> windows_;
  TraceTee tee_;
  TraceSink* sink_ = nullptr;
};

}  // namespace prosim
