#include "trace/warp_lane_trace.hpp"

#include <algorithm>
#include <ostream>

namespace prosim {

namespace {

/// Chrome-trace reserved color names, chosen so stalled states read "hot"
/// and progress reads "calm" in the default viewer palette.
const char* state_cname(WarpState state) {
  switch (state) {
    case WarpState::kIssued: return "thread_state_running";
    case WarpState::kEligible: return "thread_state_runnable";
    case WarpState::kScoreboard: return "thread_state_uninterruptible";
    case WarpState::kMemPending: return "thread_state_iowait";
    case WarpState::kSpinWait: return "bad";
    case WarpState::kFuBusy: return "thread_state_unknown";
    case WarpState::kFetch: return "generic_work";
    case WarpState::kBarrierWait: return "terrible";
    case WarpState::kFinishWait: return "grey";
    case WarpState::kUnallocated: return "white";
  }
  return "white";
}

}  // namespace

void WarpLaneTraceSink::on_warp_state(int sm, int warp, WarpState prev,
                                      Cycle since, WarpState next, Cycle now) {
  max_sm_ = std::max(max_sm_, sm);
  max_warp_ = std::max(max_warp_, warp);
  sim_end_ = std::max(sim_end_, now);
  (void)next;
  if (prev == WarpState::kUnallocated || since == now) return;
  slices_.push_back({sm, warp, prev, since, now});
}

void WarpLaneTraceSink::on_tb_launch(int sm, int ctaid, Cycle now) {
  max_sm_ = std::max(max_sm_, sm);
  markers_.push_back({sm, ctaid, now, /*retire=*/false});
}

void WarpLaneTraceSink::on_tb_retire(int sm, int ctaid, Cycle /*start*/,
                                     Cycle end) {
  max_sm_ = std::max(max_sm_, sm);
  markers_.push_back({sm, ctaid, end, /*retire=*/true});
}

void WarpLaneTraceSink::on_pro_sort(int sm, Cycle now) {
  max_sm_ = std::max(max_sm_, sm);
  sorts_.push_back({sm, -1, now, false});
}

void WarpLaneTraceSink::on_sim_end(Cycle end) {
  sim_end_ = std::max(sim_end_, end);
}

void WarpLaneTraceSink::write(std::ostream& os) const {
  // The TB-event/re-sort marker track sits above the warp tracks.
  const int marker_tid = max_warp_ + 1;
  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (int sm = 0; sm <= max_sm_; ++sm) {
    sep();
    os << R"({"name":"process_name","ph":"M","pid":)" << sm
       << R"(,"args":{"name":"SM )" << sm << R"("}})";
    os << ",\n"
       << R"({"name":"thread_name","ph":"M","pid":)" << sm
       << R"(,"tid":)" << marker_tid << R"(,"args":{"name":"TB events"}})";
  }
  for (int warp = 0; warp <= max_warp_; ++warp) {
    for (int sm = 0; sm <= max_sm_; ++sm) {
      sep();
      os << R"({"name":"thread_name","ph":"M","pid":)" << sm
         << R"(,"tid":)" << warp << R"(,"args":{"name":"warp )" << warp
         << R"("}})";
    }
  }
  for (const Slice& s : slices_) {
    sep();
    os << R"({"name":")" << warp_state_name(s.state) << R"(","ph":"X","pid":)"
       << s.sm << R"(,"tid":)" << s.warp << R"(,"ts":)" << s.start
       << R"(,"dur":)" << (s.end - s.start) << R"(,"cname":")"
       << state_cname(s.state) << R"("})";
  }
  for (const Marker& m : markers_) {
    sep();
    os << R"({"name":"TB )" << m.ctaid << (m.retire ? " retire" : " launch")
       << R"(","ph":"i","s":"t","pid":)" << m.sm << R"(,"tid":)" << marker_tid
       << R"(,"ts":)" << m.at << R"(,"args":{"ctaid":)" << m.ctaid << "}}";
  }
  for (const Marker& m : sorts_) {
    sep();
    os << R"({"name":"PRO re-sort","ph":"i","s":"p","pid":)" << m.sm
       << R"(,"tid":)" << marker_tid << R"(,"ts":)" << m.at << "}";
  }
  os << "\n]\n";
}

}  // namespace prosim
