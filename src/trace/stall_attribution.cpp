#include "trace/stall_attribution.hpp"

namespace prosim {

std::uint64_t StallBreakdown::legacy_total(LegacyStallClass cls) const {
  std::uint64_t sum = 0;
  for (int c = 0; c < kNumStallCauses; ++c) {
    if (legacy_stall_class(static_cast<StallCause>(c)) == cls)
      sum += cause_total(static_cast<StallCause>(c));
  }
  return sum;
}

std::uint64_t StallBreakdown::total_stalls() const {
  std::uint64_t sum = 0;
  for (int c = 0; c < kNumStallCauses; ++c) {
    if (static_cast<StallCause>(c) != StallCause::kIssued)
      sum += cause_total(static_cast<StallCause>(c));
  }
  return sum;
}

StallBreakdown::PerSm& StallAttributionSink::row(int sm) {
  if (static_cast<std::size_t>(sm) >= breakdown_.per_sm.size())
    breakdown_.per_sm.resize(static_cast<std::size_t>(sm) + 1);
  return breakdown_.per_sm[static_cast<std::size_t>(sm)];
}

void StallAttributionSink::on_sched_cycles(int sm, int /*sched*/,
                                           StallCause cause, Cycle count) {
  row(sm).cause_cycles[static_cast<int>(cause)] += count;
}

void StallAttributionSink::on_warp_state(int sm, int /*warp*/, WarpState prev,
                                         Cycle since, WarpState /*next*/,
                                         Cycle now) {
  row(sm).warp_state_cycles[static_cast<int>(prev)] += now - since;
}

}  // namespace prosim
