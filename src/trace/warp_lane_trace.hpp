// Warp-lane Chrome-trace writer: the per-warp companion of
// gpu/trace_export.hpp's TB-level view. Each SM is a process row, each
// warp slot a track, and each colored slice one WarpState interval — the
// paper's Figure 3/7 view of warp de-synchronization. TB launch/retire
// and PRO re-sort events appear as instant markers. Open the JSON in
// chrome://tracing or Perfetto (timestamps are simulated cycles, rendered
// as microseconds).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/trace_events.hpp"

namespace prosim {

/// TraceSink that records warp-state slices and markers in memory, then
/// serializes them as a Trace Event Format JSON array.
class WarpLaneTraceSink final : public TraceSink {
 public:
  struct Slice {
    int sm;
    int warp;
    WarpState state;
    Cycle start;
    Cycle end;
  };

  void on_warp_state(int sm, int warp, WarpState prev, Cycle since,
                     WarpState next, Cycle now) override;
  void on_tb_launch(int sm, int ctaid, Cycle now) override;
  void on_tb_retire(int sm, int ctaid, Cycle start, Cycle end) override;
  void on_pro_sort(int sm, Cycle now) override;
  void on_sim_end(Cycle end) override;

  void write(std::ostream& os) const;

  std::size_t num_slices() const { return slices_.size(); }
  /// Recorded slices in emission order (ASCII renderers, tests).
  const std::vector<Slice>& slices() const { return slices_; }

 private:
  struct Marker {
    int sm;
    int ctaid;  // -1 for PRO re-sorts
    Cycle at;
    bool retire;  // launch vs retire (unused for re-sorts)
  };

  std::vector<Slice> slices_;
  std::vector<Marker> markers_;
  std::vector<Marker> sorts_;
  int max_sm_ = -1;
  int max_warp_ = -1;
  Cycle sim_end_ = 0;
};

}  // namespace prosim
