// Per-cause, per-SM stall attribution (the paper's Figures 1/5 and
// Table III, with the refined StallCause taxonomy).
//
// The accumulator counts hardware-scheduler cycles per StallCause and
// warp-cycles per WarpState. The per-cause scheduler-cycle counts are an
// exact partition of the legacy SmStats counters: summing causes by
// legacy_stall_class() reproduces idle/scoreboard/pipeline_stalls (and
// issued) bit-exactly — the reconciliation tests assert this for every
// fig4 registry cell.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace_events.hpp"

namespace prosim {

/// The finished attribution table: one row per SM plus grid totals.
/// Drivers stamp it into GpuResult::stall_breakdown after the run.
/// Like SimThroughput it is measurement metadata: result_io's canonical
/// serializer skips it (cache bytes and result fingerprints are identical
/// with tracing on or off); write_stall_breakdown_json() exports it as its
/// own schema-versioned document.
struct StallBreakdown {
  struct PerSm {
    /// Hardware-scheduler cycles per StallCause (indexed by the enum).
    std::uint64_t cause_cycles[kNumStallCauses] = {};
    /// Warp-cycles per WarpState (indexed by the enum; closed slices only).
    std::uint64_t warp_state_cycles[kNumWarpStates] = {};
  };
  std::vector<PerSm> per_sm;

  std::uint64_t cause_total(StallCause cause) const {
    std::uint64_t sum = 0;
    for (const PerSm& sm : per_sm)
      sum += sm.cause_cycles[static_cast<int>(cause)];
    return sum;
  }
  std::uint64_t warp_state_total(WarpState state) const {
    std::uint64_t sum = 0;
    for (const PerSm& sm : per_sm)
      sum += sm.warp_state_cycles[static_cast<int>(state)];
    return sum;
  }

  /// Sum of every cause mapping onto the given legacy class — the value
  /// that must equal the matching SmStats totals counter exactly.
  std::uint64_t legacy_total(LegacyStallClass cls) const;

  /// All stall causes (everything except kIssued) — must equal
  /// GpuResult::total_stalls() exactly.
  std::uint64_t total_stalls() const;
};

/// TraceSink that fills a StallBreakdown. Needs only the per-scheduler
/// classification stream; warp-state events are consumed when delivered
/// but not required (wants_warp_states() is false so an attribution-only
/// session skips the per-warp pass entirely).
class StallAttributionSink final : public TraceSink {
 public:
  bool wants_warp_states() const override { return false; }

  void on_sched_cycles(int sm, int sched, StallCause cause,
                       Cycle count) override;
  void on_warp_state(int sm, int warp, WarpState prev, Cycle since,
                     WarpState next, Cycle now) override;

  const StallBreakdown& breakdown() const { return breakdown_; }

 private:
  StallBreakdown::PerSm& row(int sm);

  StallBreakdown breakdown_;
};

}  // namespace prosim
