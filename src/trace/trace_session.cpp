#include "trace/trace_session.hpp"

#include <fstream>

#include "common/log.hpp"

namespace prosim {

bool TraceTee::wants_warp_states() const {
  for (const TraceSink* sink : sinks_) {
    if (sink->wants_warp_states()) return true;
  }
  return false;
}

void TraceTee::on_sched_cycles(int sm, int sched, StallCause cause,
                               Cycle count) {
  for (TraceSink* sink : sinks_) sink->on_sched_cycles(sm, sched, cause, count);
}

void TraceTee::on_warp_state(int sm, int warp, WarpState prev, Cycle since,
                             WarpState next, Cycle now) {
  for (TraceSink* sink : sinks_)
    sink->on_warp_state(sm, warp, prev, since, next, now);
}

void TraceTee::on_tb_launch(int sm, int ctaid, Cycle now) {
  for (TraceSink* sink : sinks_) sink->on_tb_launch(sm, ctaid, now);
}

void TraceTee::on_tb_retire(int sm, int ctaid, Cycle start, Cycle end) {
  for (TraceSink* sink : sinks_) sink->on_tb_retire(sm, ctaid, start, end);
}

void TraceTee::on_pro_sort(int sm, Cycle now) {
  for (TraceSink* sink : sinks_) sink->on_pro_sort(sm, now);
}

void TraceTee::on_sim_end(Cycle end) {
  for (TraceSink* sink : sinks_) sink->on_sim_end(end);
}

TraceSession::TraceSession(const TraceOptions& opts) {
  int enabled = 0;
  TraceSink* only = nullptr;
  if (opts.stall_attribution) {
    attribution_ = std::make_unique<StallAttributionSink>();
    tee_.add(attribution_.get());
    only = attribution_.get();
    ++enabled;
  }
  if (opts.warp_lanes) {
    warp_lanes_ = std::make_unique<WarpLaneTraceSink>();
    tee_.add(warp_lanes_.get());
    only = warp_lanes_.get();
    ++enabled;
  }
  if (opts.windows) {
    windows_ = std::make_unique<WindowCsvSink>();
    tee_.add(windows_.get());
    only = windows_.get();
    ++enabled;
  }
  // Single-sink sessions bypass the tee's fan-out loop entirely.
  if (enabled == 1) {
    sink_ = only;
  } else if (enabled > 1) {
    sink_ = &tee_;
  }
}

namespace {
template <typename WriteFn>
bool write_file(const std::string& path, WriteFn write) {
  std::ofstream os(path);
  if (!os) {
    PROSIM_WARN("trace: cannot open %s for writing", path.c_str());
    return false;
  }
  write(os);
  return os.good();
}
}  // namespace

bool TraceSession::write_warp_lanes_file(const std::string& path) const {
  if (!warp_lanes_) return false;
  return write_file(path,
                    [this](std::ostream& os) { warp_lanes_->write(os); });
}

bool TraceSession::write_windows_csv_file(const std::string& path) const {
  if (!windows_) return false;
  return write_file(path,
                    [this](std::ostream& os) { windows_->write_csv(os); });
}

bool TraceSession::write_window_histograms_file(
    const std::string& path) const {
  if (!windows_) return false;
  return write_file(
      path, [this](std::ostream& os) { windows_->write_histograms_csv(os); });
}

}  // namespace prosim
