#include "trace/trace_events.hpp"

namespace prosim {

const char* stall_cause_name(StallCause cause) {
  switch (cause) {
    case StallCause::kIssued: return "issued";
    case StallCause::kFuBusy: return "fu_busy";
    case StallCause::kScoreboardMem: return "scoreboard_mem";
    case StallCause::kScoreboardAlu: return "scoreboard_alu";
    case StallCause::kSpinWait: return "spin_wait";
    case StallCause::kBarrierWait: return "barrier_wait";
    case StallCause::kFinishWait: return "finish_wait";
    case StallCause::kFetch: return "fetch";
    case StallCause::kThrottled: return "throttled";
    case StallCause::kNoWarp: return "no_warp";
  }
  return "?";
}

const char* warp_state_name(WarpState state) {
  switch (state) {
    case WarpState::kUnallocated: return "unallocated";
    case WarpState::kIssued: return "issued";
    case WarpState::kEligible: return "eligible";
    case WarpState::kScoreboard: return "scoreboard";
    case WarpState::kMemPending: return "mem_pending";
    case WarpState::kSpinWait: return "spin_wait";
    case WarpState::kFuBusy: return "fu_busy";
    case WarpState::kFetch: return "fetch";
    case WarpState::kBarrierWait: return "barrier_wait";
    case WarpState::kFinishWait: return "finish_wait";
  }
  return "?";
}

}  // namespace prosim
