// CSV timeline sink for synchronization-wait windows.
//
// Records one row per closed barrier-wait or finish-wait interval — the
// windows during which a warp has progress to spare and the paper's PRO
// re-prioritization is supposed to shrink — plus fixed-width Histogram
// summaries of the window lengths for quick distribution comparisons
// across schedulers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/stats.hpp"
#include "trace/trace_events.hpp"

namespace prosim {

/// TraceSink recording {kind, sm, warp, start, end} rows for every closed
/// barrier-wait / finish-wait window, with histogram summaries.
class WindowCsvSink final : public TraceSink {
 public:
  struct Window {
    WarpState kind;  // kBarrierWait or kFinishWait
    int sm;
    int warp;
    Cycle start;
    Cycle end;
  };

  WindowCsvSink();

  void on_warp_state(int sm, int warp, WarpState prev, Cycle since,
                     WarpState next, Cycle now) override;

  /// One header row then one data row per window:
  /// kind,sm,warp,start,end,length
  void write_csv(std::ostream& os) const;

  /// Histogram summary (kind,bin_lo,bin_hi,count rows; "<lo" / ">=hi"
  /// rows carry the under/overflow counts).
  void write_histograms_csv(std::ostream& os) const;

  const std::vector<Window>& windows() const { return windows_; }
  const Histogram& barrier_hist() const { return barrier_hist_; }
  const Histogram& finish_hist() const { return finish_hist_; }

 private:
  std::vector<Window> windows_;
  Histogram barrier_hist_;
  Histogram finish_hist_;
};

}  // namespace prosim
