// Core scalar types and small constants shared across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace prosim {

/// Simulation time, in core clock cycles. The whole machine runs in a single
/// clock domain (see DESIGN.md, "Known simplifications").
using Cycle = std::uint64_t;

/// Byte address in the simulated global address space.
using Addr = std::uint64_t;

/// Value held by one architectural register of one thread.
using RegValue = std::int64_t;

inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// SIMT width: threads per warp (NVIDIA terminology, fixed at 32).
inline constexpr int kWarpSize = 32;

/// Lane-participation mask for one warp (bit i = thread i active).
using ActiveMask = std::uint32_t;

inline constexpr ActiveMask kFullMask = 0xFFFFFFFFu;

inline int popcount_mask(ActiveMask m) { return __builtin_popcount(m); }

}  // namespace prosim
