// Deterministic pseudo-random number generation (xoshiro256**).
//
// Workload generators and tests must be reproducible bit-for-bit across
// runs and platforms, so we avoid std::mt19937's distribution functions
// (which are implementation-defined) and carry our own generator and
// bounded-int helper.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace prosim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, per Vigna's reference implementation.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    PROSIM_CHECK(bound > 0);
    // Debiased modulo (rejection sampling on the tail).
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    PROSIM_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace prosim
