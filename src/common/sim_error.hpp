// Structured, recoverable simulation errors.
//
// The simulator distinguishes two failure classes:
//  - PROSIM_CHECK / PROSIM_CHECK_MSG (check.hpp): internal invariants whose
//    violation means the simulator itself is broken. These abort.
//  - PROSIM_REQUIRE: conditions a *simulated program or configuration* can
//    violate (deadlocked kernels, out-of-range shared-memory accesses,
//    invalid programs, livelock). These throw a SimException carrying a
//    SimError with enough context — cycle, SM, warp, PC, and a per-warp
//    blocked-state diagnosis — for the caller to report and degrade
//    gracefully instead of dying mid-run.
#pragma once

#include <cstdint>
#include <exception>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace prosim {

enum class ErrorCategory {
  kLivelock,         ///< no forward progress / max_cycles overrun
  kBarrierMismatch,  ///< warps stuck at a barrier that can never release
  kMshrLeak,         ///< outstanding memory requests that never complete
  kStarvation,       ///< a warp never issues while the GPU keeps issuing
  kInvariant,        ///< invalid program or configuration
};

const char* to_string(ErrorCategory category);

/// Why a resident warp could not issue, mirroring the issue-cycle
/// classification in SmCore (most specific reason wins).
enum class WarpBlockReason {
  kBarrier,     ///< waiting at a barrier (see warps_at_barrier / warps_live)
  kScoreboard,  ///< operand registers pending (RAW/WAW)
  kDrain,       ///< at exit, waiting for in-flight writebacks to retire
  kFetch,       ///< i-buffer refill in progress
  kFuBusy,      ///< ready, but the required function unit is occupied
  kRunnable,    ///< schedulable this cycle (not blocked)
};

const char* to_string(WarpBlockReason reason);

/// Snapshot of one unfinished warp at diagnosis time.
struct WarpBlockInfo {
  int sm_id = -1;
  int warp = -1;
  int ctaid = -1;
  std::int64_t pc = -1;
  WarpBlockReason reason = WarpBlockReason::kRunnable;
  /// Scoreboard registers the blocking instruction is waiting on
  /// (kScoreboard / kDrain).
  std::uint64_t pending_regs = 0;
  /// Barrier bookkeeping of the warp's TB (kBarrier).
  int warps_at_barrier = 0;
  int warps_live = 0;
  Cycle barrier_wait = 0;  ///< cycles spent waiting at the barrier so far
  Cycle issue_gap = 0;     ///< cycles since the warp last issued
};

/// Snapshot of one SM's memory-side liveness at diagnosis time.
struct SmHealth {
  int sm_id = -1;
  int resident_tbs = 0;
  int live_pending_loads = 0;
  int l1_mshr_occupancy = 0;
  int const_mshr_occupancy = 0;
  bool ldst_busy = false;
  std::uint64_t issued = 0;  ///< cumulative issued warp instructions
};

/// A structured simulation error: what went wrong, where, and — for
/// watchdog-produced errors — the full blocked-warp diagnosis.
struct SimError {
  ErrorCategory category = ErrorCategory::kInvariant;
  std::string message;
  Cycle cycle = 0;
  int sm_id = -1;
  int warp = -1;
  std::int64_t pc = -1;
  std::vector<WarpBlockInfo> warps;
  std::vector<SmHealth> sm_health;

  static SimError make(ErrorCategory category, std::string message) {
    SimError e;
    e.category = category;
    e.message = std::move(message);
    return e;
  }
  SimError& at_cycle(Cycle c) { cycle = c; return *this; }
  SimError& on_sm(int s) { sm_id = s; return *this; }
  SimError& on_warp(int w) { warp = w; return *this; }
  SimError& at_pc(std::int64_t p) { pc = p; return *this; }

  /// Multi-line human-readable diagnosis.
  std::string to_string() const;
  /// The same diagnosis as a JSON object (for --json consumers).
  void write_json(std::ostream& os) const;
};

class SimException : public std::exception {
 public:
  explicit SimException(SimError error)
      : error_(std::move(error)),
        what_(std::string(prosim::to_string(error_.category)) + ": " +
              error_.message) {}

  const char* what() const noexcept override { return what_.c_str(); }
  const SimError& error() const { return error_; }
  SimError take_error() { return std::move(error_); }

 private:
  SimError error_;
  std::string what_;
};

/// Minimal expected-style result (std::expected is C++23; we target C++20):
/// either a value or a SimError.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}              // NOLINT
  Expected(SimError error) : error_(std::move(error)) {}       // NOLINT

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  const SimError& error() const { return *error_; }
  SimError& error() { return *error_; }

 private:
  std::optional<T> value_;
  std::optional<SimError> error_;
};

}  // namespace prosim

/// Recoverable-condition guard: throws SimException(error_expr) when the
/// condition fails. `error_expr` is only evaluated on failure, so building
/// the SimError (string formatting included) costs nothing on the hot path.
#define PROSIM_REQUIRE(cond, error_expr)                  \
  do {                                                    \
    if (!(cond)) {                                        \
      throw ::prosim::SimException(error_expr);           \
    }                                                     \
  } while (0)
