// Lightweight statistics helpers: named counters, ratio summaries, and the
// geometric means used throughout the paper's evaluation section.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace prosim {

/// A bag of named 64-bit counters. Components register counters lazily;
/// lookup cost is irrelevant because hot-path counters are plain members —
/// this bag is for end-of-run reporting only.
class CounterBag {
 public:
  void add(const std::string& name, std::uint64_t delta) {
    counters_[name] += delta;
  }
  void set(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }
  std::uint64_t get(const std::string& name) const;
  bool has(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void merge(const CounterBag& other);

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// A CounterBag shared between threads: every operation takes an internal
/// mutex. The sweep runner's workers account cache hits / simulations /
/// failures through one of these; contention is irrelevant because updates
/// happen once per job, not per cycle.
class ConcurrentCounterBag {
 public:
  void add(const std::string& name, std::uint64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    bag_.add(name, delta);
  }
  void set(const std::string& name, std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    bag_.set(name, value);
  }
  std::uint64_t get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bag_.get(name);
  }
  void merge(const CounterBag& other) {
    std::lock_guard<std::mutex> lock(mu_);
    bag_.merge(other);
  }
  /// Consistent copy of the whole bag (for end-of-sweep reporting).
  CounterBag snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bag_;
  }

 private:
  mutable std::mutex mu_;
  CounterBag bag_;
};

/// Geometric mean of a vector of positive ratios. Returns 0 for an empty
/// input. Values <= 0 are rejected (PROSIM_CHECK).
double geomean(const std::vector<double>& values);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& values);

/// Simple fixed-width histogram for distribution-style reporting
/// (e.g. warp-level divergence spreads).
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);
  void add(double value);
  std::uint64_t bin_count(int bin) const { return bins_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  double bin_lo(int bin) const;
  double bin_hi(int bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace prosim
