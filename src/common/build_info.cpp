#include "common/build_info.hpp"

#include <ostream>

#include "common/json.hpp"

// CMake defines these on prosim_common; the fallbacks keep stray builds
// (e.g. compile_commands tooling) compiling.
#ifndef PROSIM_GIT_HASH
#define PROSIM_GIT_HASH ""
#endif
#ifndef PROSIM_BUILD_TYPE
#define PROSIM_BUILD_TYPE ""
#endif
#ifndef PROSIM_COMPILER
#define PROSIM_COMPILER ""
#endif
#ifndef PROSIM_SANITIZE_FLAGS
#define PROSIM_SANITIZE_FLAGS ""
#endif

namespace prosim {

const BuildInfo& build_info() {
  static const BuildInfo info{PROSIM_GIT_HASH, PROSIM_BUILD_TYPE,
                              PROSIM_COMPILER, PROSIM_SANITIZE_FLAGS};
  return info;
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  std::string line = "prosim ";
  line += info.git_hash[0] != '\0' ? info.git_hash : "unknown";
  line += " (";
  line += info.build_type;
  line += ", ";
  line += info.compiler;
  if (info.sanitize[0] != '\0') {
    line += ", sanitize=";
    line += info.sanitize;
  }
  line += ")";
  return line;
}

void write_build_info_json(std::ostream& os) {
  os << "{\"git_hash\":";
  write_json_string(os, build_info().git_hash);
  os << ",\"build_type\":";
  write_json_string(os, build_info().build_type);
  os << ",\"compiler\":";
  write_json_string(os, build_info().compiler);
  os << ",\"sanitize\":";
  write_json_string(os, build_info().sanitize);
  os << "}";
}

}  // namespace prosim
