#include "common/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/sim_error.hpp"

namespace prosim {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(std::string token) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::move(token);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  PROSIM_REQUIRE(is_bool(), SimError::make(ErrorCategory::kInvariant, "JSON value is not a bool"));
  return bool_;
}

std::uint64_t JsonValue::as_u64() const {
  PROSIM_REQUIRE(is_number(), SimError::make(ErrorCategory::kInvariant, "JSON value is not a number"));
  // strtoull accepts and wraps negative input; a uint64 field must not.
  PROSIM_REQUIRE(!scalar_.empty() && scalar_[0] != '-',
                 SimError::make(ErrorCategory::kInvariant,
                                "JSON number is not a uint64"));
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(scalar_.c_str(), &end, 10);
  PROSIM_REQUIRE(errno == 0 && end != nullptr && *end == '\0', SimError::make(ErrorCategory::kInvariant, "JSON number is not a uint64"));
  return v;
}

std::int64_t JsonValue::as_i64() const {
  PROSIM_REQUIRE(is_number(), SimError::make(ErrorCategory::kInvariant, "JSON value is not a number"));
  errno = 0;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(scalar_.c_str(), &end, 10);
  PROSIM_REQUIRE(errno == 0 && end != nullptr && *end == '\0', SimError::make(ErrorCategory::kInvariant, "JSON number is not an int64"));
  return v;
}

double JsonValue::as_double() const {
  PROSIM_REQUIRE(is_number(), SimError::make(ErrorCategory::kInvariant, "JSON value is not a number"));
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& JsonValue::as_string() const {
  PROSIM_REQUIRE(is_string(), SimError::make(ErrorCategory::kInvariant, "JSON value is not a string"));
  return scalar_;
}

const std::string& JsonValue::number_token() const {
  PROSIM_REQUIRE(is_number(), SimError::make(ErrorCategory::kInvariant, "JSON value is not a number"));
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  PROSIM_REQUIRE(is_array(), SimError::make(ErrorCategory::kInvariant, "JSON value is not an array"));
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  PROSIM_REQUIRE(is_object(), SimError::make(ErrorCategory::kInvariant, "JSON value is not an object"));
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  PROSIM_REQUIRE(v != nullptr,
                 SimError::make(ErrorCategory::kInvariant,
                                "missing JSON key: " + std::string(key)));
  return *v;
}

void JsonValue::push_back(JsonValue v) {
  PROSIM_REQUIRE(is_array(), SimError::make(ErrorCategory::kInvariant, "push_back on non-array JSON value"));
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  PROSIM_REQUIRE(is_object(), SimError::make(ErrorCategory::kInvariant, "set on non-object JSON value"));
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    JsonValue value;
    if (!parse_value(value)) {
      result.error = JsonParseError{line_, message_};
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = JsonParseError{line_, "trailing characters"};
      return result;
    }
    result.value = std::move(value);
    return result;
  }

 private:
  bool fail(std::string message) {
    if (message_.empty()) message_ = std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool peek(char& c) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    c = text_[pos_];
    return true;
  }

  bool consume(char expect) {
    char c;
    if (!peek(c)) return false;
    if (c != expect)
      return fail(std::string("expected '") + expect + "'");
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    char c;
    if (!peek(c)) return false;
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
        if (!literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue::make_null();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\n') return fail("newline in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Control-character escapes are all we emit; reject the rest
          // rather than mis-decode multi-byte sequences.
          if (code > 0x7F) return fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue::make_string(std::move(s));
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == digits) return fail("invalid value");
    out = JsonValue::make_number(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out = JsonValue::make_array();
    char c;
    if (!peek(c)) return false;
    if (c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      if (!peek(c)) return false;
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out = JsonValue::make_object();
    char c;
    if (!peek(c)) return false;
    if (c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.set(std::move(key), std::move(value));
      if (!peek(c)) return false;
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::string message_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json(std::ostream& os, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; break;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::kNumber: os << v.number_token(); break;
    case JsonValue::Kind::kString: write_json_string(os, v.as_string()); break;
    case JsonValue::Kind::kArray: {
      os << '[';
      const std::vector<JsonValue>& items = v.items();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) os << ',';
        write_json(os, items[i]);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      const auto& members = v.members();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) os << ',';
        write_json_string(os, members[i].first);
        os << ':';
        write_json(os, members[i].second);
      }
      os << '}';
      break;
    }
  }
}

std::string json_to_string(const JsonValue& v) {
  std::ostringstream os;
  write_json(os, v);
  return os.str();
}

}  // namespace prosim
