// Exact percentile computation over integer samples (nearest-rank method).
//
// Built for the serving report's tail-latency metrics (p50/p95/p99 queueing
// and completion latency), where the sample counts are small and the
// determinism discipline forbids interpolation: every reported percentile
// is one of the observed samples, selected by integer arithmetic only, so
// reports are bit-identical across platforms and worker-thread counts.
//
// Tie handling is deterministic by construction: samples are sorted with
// std::sort (equal values are indistinguishable u64s) and the nearest-rank
// index ceil(p/100 * N) is computed without floating point.
#pragma once

#include <cstdint>
#include <vector>

namespace prosim {

class Percentiles {
 public:
  /// Takes ownership of the samples and sorts them ascending.
  explicit Percentiles(std::vector<std::uint64_t> samples);

  bool empty() const { return samples_.empty(); }
  std::size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile for an integer percent in [1, 100]: the
  /// sample at 1-based rank ceil(pct/100 * N). PROSIM_CHECKs a non-empty
  /// sample set and a valid percent.
  std::uint64_t percentile(int pct) const;

  std::uint64_t p50() const { return percentile(50); }
  std::uint64_t p95() const { return percentile(95); }
  std::uint64_t p99() const { return percentile(99); }
  std::uint64_t min() const { return percentile(1); }
  std::uint64_t max() const { return percentile(100); }

  /// Exact integer sum (for means computed by callers).
  std::uint64_t sum() const { return sum_; }

  const std::vector<std::uint64_t>& sorted() const { return samples_; }

 private:
  std::vector<std::uint64_t> samples_;  // sorted ascending
  std::uint64_t sum_ = 0;
};

}  // namespace prosim
