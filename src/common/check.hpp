// Always-on invariant checks. A cycle-level simulator silently producing
// wrong timing is worse than one that aborts, so these stay enabled in
// release builds; the hot path uses them sparingly.
//
// These macros are for *simulator* invariants only — conditions that can
// never fail unless prosim itself is buggy. Conditions a simulated program
// or configuration can trigger (deadlock, livelock, out-of-range accesses,
// invalid programs) must use PROSIM_REQUIRE (common/sim_error.hpp), which
// throws a recoverable SimException instead of aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

#define PROSIM_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PROSIM_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define PROSIM_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PROSIM_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
