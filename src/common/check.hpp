// Always-on invariant checks. A cycle-level simulator silently producing
// wrong timing is worse than one that aborts, so these stay enabled in
// release builds; the hot path uses them sparingly.
#pragma once

#include <cstdio>
#include <cstdlib>

#define PROSIM_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PROSIM_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define PROSIM_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PROSIM_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
