#include "common/argparse.hpp"

#include <cstdlib>
#include <iostream>
#include <ostream>

#include "common/check.hpp"

namespace prosim {

namespace {

bool parse_i64(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

ArgParser::ArgParser(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, bool* out,
                         const std::string& help) {
  specs_.push_back({Kind::kBool, name, "", help, out});
}

void ArgParser::add_string(const std::string& name, std::string* out,
                           const std::string& metavar,
                           const std::string& help) {
  specs_.push_back({Kind::kString, name, metavar, help, out});
}

void ArgParser::add_string_list(const std::string& name,
                                std::vector<std::string>* out,
                                const std::string& metavar,
                                const std::string& help) {
  specs_.push_back({Kind::kStringList, name, metavar, help, out});
}

void ArgParser::add_int(const std::string& name, int* out,
                        const std::string& metavar, const std::string& help) {
  specs_.push_back({Kind::kInt, name, metavar, help, out});
}

void ArgParser::add_i64(const std::string& name, std::int64_t* out,
                        const std::string& metavar, const std::string& help) {
  specs_.push_back({Kind::kI64, name, metavar, help, out});
}

void ArgParser::add_u64(const std::string& name, std::uint64_t* out,
                        const std::string& metavar, const std::string& help) {
  specs_.push_back({Kind::kU64, name, metavar, help, out});
}

void ArgParser::add_positional(const std::string& name, std::string* out,
                               const std::string& help) {
  positionals_.push_back({name, help, out});
}

void ArgParser::add_section(const std::string& title) {
  specs_.push_back({Kind::kSection, title, "", "", nullptr});
}

ArgParser::Spec* ArgParser::find(const std::string& name) {
  for (Spec& spec : specs_) {
    if (spec.kind != Kind::kSection && spec.name == name) return &spec;
  }
  return nullptr;
}

bool ArgParser::apply_value(Spec& spec, const std::string& value) {
  switch (spec.kind) {
    case Kind::kString:
      *static_cast<std::string*>(spec.out) = value;
      return true;
    case Kind::kStringList:
      *static_cast<std::vector<std::string>*>(spec.out) = split_commas(value);
      return true;
    case Kind::kInt: {
      std::int64_t v = 0;
      if (!parse_i64(value, v) || v < INT32_MIN || v > INT32_MAX) return false;
      *static_cast<int*>(spec.out) = static_cast<int>(v);
      return true;
    }
    case Kind::kI64:
      return parse_i64(value, *static_cast<std::int64_t*>(spec.out));
    case Kind::kU64:
      return parse_u64(value, *static_cast<std::uint64_t*>(spec.out));
    case Kind::kBool:
    case Kind::kSection:
      break;
  }
  PROSIM_CHECK_MSG(false, "apply_value on a valueless flag");
  return false;
}

ArgParser::Status ArgParser::fail(const std::string& message) const {
  std::cerr << prog_ << ": " << message << "\n"
            << "try '" << prog_ << " --help'\n";
  return Status::kError;
}

ArgParser::Status ArgParser::parse(int argc, char** argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      write_help(std::cout);
      return Status::kHelp;
    }
    if (arg == "--version" && !version_.empty()) {
      std::cout << version_ << "\n";
      return Status::kVersion;
    }
    if (arg.rfind("--", 0) != 0) {
      if (next_positional >= positionals_.size()) {
        return fail("unexpected argument '" + arg + "'");
      }
      Positional& pos = positionals_[next_positional++];
      *pos.out = arg;
      pos.seen = true;
      continue;
    }
    // --flag=value spelling.
    std::string inline_value;
    bool have_inline = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_inline = true;
    }
    Spec* spec = find(arg);
    if (spec == nullptr) return fail("unknown option '" + arg + "'");
    spec->seen = true;
    if (spec->kind == Kind::kBool) {
      if (have_inline) return fail(arg + " does not take a value");
      *static_cast<bool*>(spec->out) = true;
      continue;
    }
    std::string value;
    if (have_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) return fail(arg + " requires a value");
      value = argv[++i];
    }
    if (!apply_value(*spec, value)) {
      return fail("invalid value '" + value + "' for " + arg);
    }
  }
  return Status::kOk;
}

bool ArgParser::seen(const std::string& name) const {
  for (const Spec& spec : specs_) {
    if (spec.kind != Kind::kSection && spec.name == name) return spec.seen;
  }
  for (const Positional& pos : positionals_) {
    if (pos.name == name) return pos.seen;
  }
  return false;
}

void ArgParser::write_help(std::ostream& os) const {
  os << "usage: " << prog_ << " [options]";
  for (const Positional& pos : positionals_) os << " [" << pos.name << "]";
  os << "\n";
  if (!description_.empty()) os << description_ << "\n";

  // Column where help text starts, from the widest flag+metavar.
  std::size_t width = 0;
  for (const Spec& spec : specs_) {
    if (spec.kind == Kind::kSection) continue;
    std::size_t w = spec.name.size();
    if (!spec.metavar.empty()) w += 1 + spec.metavar.size();
    width = std::max(width, w);
  }
  for (const Positional& pos : positionals_) {
    width = std::max(width, pos.name.size());
  }
  width = std::max(width, std::string("--help").size());

  auto print_row = [&](const std::string& head, const std::string& help) {
    os << "  " << head;
    for (std::size_t p = head.size(); p < width + 2; ++p) os << ' ';
    os << help << "\n";
  };

  if (!positionals_.empty()) {
    os << "\narguments:\n";
    for (const Positional& pos : positionals_) print_row(pos.name, pos.help);
  }
  bool in_options = false;
  for (const Spec& spec : specs_) {
    if (spec.kind == Kind::kSection) {
      os << "\n" << spec.name << ":\n";
      in_options = true;
      continue;
    }
    if (!in_options) {
      os << "\noptions:\n";
      in_options = true;
    }
    std::string head = spec.name;
    if (!spec.metavar.empty()) head += " " + spec.metavar;
    print_row(head, spec.help);
  }
  if (!in_options) os << "\noptions:\n";
  print_row("--help", "show this help and exit");
  if (!version_.empty()) {
    print_row("--version", "show build provenance and exit");
  }
  if (!epilog_.empty()) os << "\n" << epilog_ << "\n";
}

}  // namespace prosim
