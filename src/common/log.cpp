#include "common/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace prosim::logging {

namespace {
LogLevel g_level = LogLevel::kOff;
bool g_initialized = false;
}  // namespace

void init_from_env() {
  if (g_initialized) return;
  g_initialized = true;
  const char* env = std::getenv("PROSIM_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "error") == 0) {
    g_level = LogLevel::kError;
  } else if (std::strcmp(env, "warn") == 0) {
    g_level = LogLevel::kWarn;
  } else if (std::strcmp(env, "info") == 0) {
    g_level = LogLevel::kInfo;
  } else if (std::strcmp(env, "debug") == 0) {
    g_level = LogLevel::kDebug;
  }
}

LogLevel level() {
  init_from_env();
  return g_level;
}

void set_level(LogLevel lvl) {
  g_initialized = true;
  g_level = lvl;
}

void vlog(LogLevel lvl, const char* fmt, ...) {
  const char* tag = "?";
  switch (lvl) {
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[prosim %s] ", tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace prosim::logging
