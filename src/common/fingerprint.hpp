// Stable content fingerprinting for configs, workloads, and cache keys.
//
// Fingerprint is a 64-bit FNV-1a accumulator with typed feeders. All
// integers are folded in as fixed-width little-endian bytes and strings are
// length-prefixed, so the hash is stable across platforms, compilers, and
// process runs — a requirement for the on-disk result cache, whose entries
// must remain valid between invocations. It is NOT a cryptographic hash;
// keys additionally embed a human-readable component so accidental
// collisions are detectable by eye in the cache directory.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace prosim {

class Fingerprint {
 public:
  Fingerprint& add_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= kPrime;
    }
    return *this;
  }

  Fingerprint& add(std::uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    return add_bytes(bytes, sizeof bytes);
  }
  Fingerprint& add(std::int64_t v) { return add(static_cast<std::uint64_t>(v)); }
  Fingerprint& add(int v) { return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  Fingerprint& add(bool v) { return add(static_cast<std::uint64_t>(v ? 1 : 0)); }
  Fingerprint& add(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return add(bits);
  }
  Fingerprint& add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    return add_bytes(s.data(), s.size());
  }
  Fingerprint& add(const char* s) { return add(std::string_view(s)); }

  std::uint64_t hash() const { return hash_; }

  /// 16-digit lowercase hex rendering of hash().
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
      out[15 - i] = digits[(hash_ >> (4 * i)) & 0xF];
    return out;
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV offset basis
};

}  // namespace prosim
