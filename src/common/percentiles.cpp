#include "common/percentiles.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prosim {

Percentiles::Percentiles(std::vector<std::uint64_t> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
  for (const std::uint64_t s : samples_) sum_ += s;
}

std::uint64_t Percentiles::percentile(int pct) const {
  PROSIM_CHECK_MSG(!samples_.empty(), "percentile of an empty sample set");
  PROSIM_CHECK_MSG(pct >= 1 && pct <= 100, "percent outside [1, 100]");
  // Nearest rank, integer-only: rank = ceil(pct/100 * N), 1-based.
  const std::uint64_t n = samples_.size();
  const std::uint64_t rank =
      (n * static_cast<std::uint64_t>(pct) + 99) / 100;
  return samples_[static_cast<std::size_t>(rank - 1)];
}

}  // namespace prosim
