// Build provenance stamped in by CMake (git hash, compiler, build type,
// sanitizer flags) — reported by every CLI's --version and embedded in
// JSON reports *outside* the fingerprinted result blocks, so two builds
// of the same source produce identical result bytes while the report
// still says which binary wrote it.
#pragma once

#include <iosfwd>
#include <string>

namespace prosim {

/// Static build provenance; every field is a compile-time constant
/// (empty string when CMake could not determine it, e.g. no git).
struct BuildInfo {
  const char* git_hash;    ///< short commit hash ("" outside a checkout)
  const char* build_type;  ///< CMAKE_BUILD_TYPE
  const char* compiler;    ///< "<id> <version>"
  const char* sanitize;    ///< PROSIM_SANITIZE list ("" = off)
};

const BuildInfo& build_info();

/// One-line human form: "prosim <hash> (<type>, <compiler>[, sanitize=x])".
std::string build_info_line();

/// JSON object {"git_hash":...,"build_type":...,"compiler":...,
/// "sanitize":...} for report stamping (never inside a result block).
void write_build_info_json(std::ostream& os);

}  // namespace prosim
