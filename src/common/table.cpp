#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace prosim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PROSIM_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PROSIM_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }

std::string Table::fmt(int value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << quote(row[c]) << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace prosim
