// Minimal leveled logging. Off by default; enable with PROSIM_LOG=debug or
// set_level(). Not used on the simulator hot path.
#pragma once

#include <cstdio>
#include <string>

namespace prosim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

namespace logging {

LogLevel level();
void set_level(LogLevel level);

/// Reads PROSIM_LOG from the environment ("off"/"error"/"warn"/"info"/
/// "debug"); called once on first use.
void init_from_env();

void vlog(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace logging

#define PROSIM_LOG(lvl, ...)                                        \
  do {                                                              \
    if (::prosim::logging::level() >= (lvl)) {                      \
      ::prosim::logging::vlog((lvl), __VA_ARGS__);                  \
    }                                                               \
  } while (0)

#define PROSIM_DEBUG(...) PROSIM_LOG(::prosim::LogLevel::kDebug, __VA_ARGS__)
#define PROSIM_INFO(...) PROSIM_LOG(::prosim::LogLevel::kInfo, __VA_ARGS__)
#define PROSIM_WARN(...) PROSIM_LOG(::prosim::LogLevel::kWarn, __VA_ARGS__)

}  // namespace prosim
