// Shared command-line parser for the prosim executables.
//
// One declarative flag table per tool replaces the hand-rolled argv loops:
// typed flags bind directly to caller variables (the bound value doubles
// as the default), `--help` is generated from the table, and an unknown
// flag or malformed value prints a one-line error plus a usage hint and
// reports Status::kError (the tools exit 2, the usage convention they
// already had). Both `--flag value` and `--flag=value` spellings work.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace prosim {

class ArgParser {
 public:
  /// `prog` is the executable name for the usage line; `description` is
  /// printed under it by --help.
  ArgParser(std::string prog, std::string description);

  // ---- flag declarations (bound pointer = destination AND default) -------
  /// Boolean switch: presence sets *out to true (no value accepted).
  void add_flag(const std::string& name, bool* out, const std::string& help);
  void add_string(const std::string& name, std::string* out,
                  const std::string& metavar, const std::string& help);
  /// Comma-separated list, e.g. --workloads a,b,c (empty items dropped).
  void add_string_list(const std::string& name, std::vector<std::string>* out,
                       const std::string& metavar, const std::string& help);
  void add_int(const std::string& name, int* out, const std::string& metavar,
               const std::string& help);
  void add_i64(const std::string& name, std::int64_t* out,
               const std::string& metavar, const std::string& help);
  void add_u64(const std::string& name, std::uint64_t* out,
               const std::string& metavar, const std::string& help);

  /// Optional positional argument, filled in declaration order.
  void add_positional(const std::string& name, std::string* out,
                      const std::string& help);

  /// Starts a titled group in the help listing (purely cosmetic).
  void add_section(const std::string& title);

  /// Free-form text printed after the option listing by --help (e.g. the
  /// scheduler registry or exit-code conventions).
  void set_epilog(std::string epilog) { epilog_ = std::move(epilog); }

  /// Enables --version: the line is printed verbatim to stdout and parse
  /// reports Status::kVersion (callers exit 0, like --help).
  void set_version(std::string version) { version_ = std::move(version); }

  enum class Status {
    kOk,       ///< parsed; proceed
    kHelp,     ///< --help printed to stdout; exit 0
    kVersion,  ///< --version printed to stdout; exit 0
    kError     ///< error printed to stderr; exit 2
  };

  /// Parses argv[1..). Every matched flag is recorded for seen().
  Status parse(int argc, char** argv);

  /// True when the named flag (or positional) was present on the command
  /// line — distinguishes "explicitly passed the default" from "absent".
  bool seen(const std::string& name) const;

  void write_help(std::ostream& os) const;

 private:
  enum class Kind { kBool, kString, kStringList, kInt, kI64, kU64, kSection };

  struct Spec {
    Kind kind;
    std::string name;     // "--kernel" (section title for kSection)
    std::string metavar;  // "NAME"
    std::string help;
    void* out = nullptr;
    bool seen = false;
  };

  struct Positional {
    std::string name;
    std::string help;
    std::string* out = nullptr;
    bool seen = false;
  };

  Spec* find(const std::string& name);
  bool apply_value(Spec& spec, const std::string& value);
  Status fail(const std::string& message) const;

  std::string prog_;
  std::string description_;
  std::string epilog_;
  std::string version_;
  std::vector<Spec> specs_;
  std::vector<Positional> positionals_;
};

}  // namespace prosim
