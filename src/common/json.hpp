// Minimal JSON document model: parse, navigate, and write.
//
// Built for the runner's matrix specs and the on-disk result cache, which
// need exact integer round trips (cycle counters are uint64). Numbers are
// therefore kept as their source token and converted on access — writing a
// uint64 and parsing it back is lossless, with no double-precision detour.
// The writer escapes strings the same way gpu/report.cpp historically did
// (that code now calls write_json_string from here).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prosim {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(std::string token);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  /// Number accessors parse the stored token; they throw SimException on
  /// kind mismatch, so check is_number() on untrusted paths first.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;
  /// Raw source token of a number (write_json emits it verbatim).
  const std::string& number_token() const;

  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Object lookup that throws SimException when the key is missing (all
  /// accessor kind mismatches throw too — JSON is external input).
  const JsonValue& at(std::string_view key) const;

  // Mutation (used by programmatic builders).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number token or string payload
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonParseError {
  std::size_t line = 0;  // 1-based
  std::string message;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Returns the error instead of throwing: spec files are user input.
struct JsonParseResult {
  std::optional<JsonValue> value;
  std::optional<JsonParseError> error;
  bool ok() const { return value.has_value(); }
};
JsonParseResult parse_json(std::string_view text);

/// Writes `s` as a JSON string literal (quotes + escapes).
void write_json_string(std::ostream& os, std::string_view s);

/// Writes any JsonValue back out in canonical form (no whitespace, members
/// in stored order). Number tokens are emitted verbatim, so a parse →
/// write round trip is lossless for 64-bit integers; string escapes are
/// normalized to write_json_string's form. Used to carry *unknown* JSON
/// blocks through readers that don't understand them (see result_io).
void write_json(std::ostream& os, const JsonValue& v);
std::string json_to_string(const JsonValue& v);

}  // namespace prosim
