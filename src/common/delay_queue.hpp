// DelayQueue models a latency + bandwidth limited link: items become visible
// `latency` cycles after push, and at most `bandwidth` items can be popped
// per cycle. Used for interconnect ports, cache response paths, and the
// DRAM data bus return path.
#pragma once

#include <deque>
#include <utility>

#include "common/check.hpp"
#include "common/types.hpp"

namespace prosim {

template <typename T>
class DelayQueue {
 public:
  DelayQueue() = default;
  DelayQueue(Cycle latency, int bandwidth_per_cycle, std::size_t capacity)
      : latency_(latency),
        bandwidth_(bandwidth_per_cycle),
        capacity_(capacity) {
    PROSIM_CHECK(bandwidth_per_cycle > 0);
    PROSIM_CHECK(capacity > 0);
  }

  bool can_push() const { return queue_.size() < capacity_; }

  /// Pushes an item that becomes poppable at `now + latency`.
  void push(T item, Cycle now) {
    PROSIM_CHECK_MSG(can_push(), "DelayQueue overflow");
    queue_.emplace_back(now + latency_, std::move(item));
  }

  /// Must be called once per cycle before pops to reset the bandwidth
  /// budget for cycle `now`.
  void begin_cycle(Cycle now) {
    current_cycle_ = now;
    pops_this_cycle_ = 0;
  }

  /// True if an item is ready and bandwidth remains this cycle.
  bool can_pop() const {
    return pops_this_cycle_ < bandwidth_ && !queue_.empty() &&
           queue_.front().first <= current_cycle_;
  }

  T pop() {
    PROSIM_CHECK(can_pop());
    ++pops_this_cycle_;
    T item = std::move(queue_.front().second);
    queue_.pop_front();
    return item;
  }

  /// Peek at the head item (which must be ready).
  const T& front() const {
    PROSIM_CHECK(!queue_.empty());
    return queue_.front().second;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  std::size_t free_slots() const { return capacity_ - queue_.size(); }

  /// Cycle at which the head item becomes poppable (kNoCycle when empty).
  /// Arrival times are monotone (FIFO, fixed latency), so the head is
  /// always the earliest — this is the queue's next-event time.
  Cycle next_ready() const {
    return queue_.empty() ? kNoCycle : queue_.front().first;
  }

 private:
  Cycle latency_ = 0;
  int bandwidth_ = 1;
  std::size_t capacity_ = 64;
  Cycle current_cycle_ = 0;
  int pops_this_cycle_ = 0;
  std::deque<std::pair<Cycle, T>> queue_;
};

}  // namespace prosim
