// ASCII table and CSV emission for bench harness reports. Every bench binary
// prints the same rows/series the paper's tables and figures report; this
// keeps the formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace prosim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(int value);

  /// Renders with aligned columns: first column left-aligned, the rest
  /// right-aligned (numeric convention).
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish quoting of commas/quotes).
  void print_csv(std::ostream& os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prosim
