#include "common/stats.hpp"

#include <cmath>

#include "common/check.hpp"

namespace prosim {

std::uint64_t CounterBag::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterBag::merge(const CounterBag& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    PROSIM_CHECK_MSG(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), bins_(static_cast<std::size_t>(bins), 0) {
  PROSIM_CHECK(bins > 0);
  PROSIM_CHECK(hi > lo);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(bins_.size()));
  if (bin >= bins_.size()) bin = bins_.size() - 1;
  ++bins_[bin];
}

double Histogram::bin_lo(int bin) const {
  return lo_ + (hi_ - lo_) * bin / static_cast<double>(bins_.size());
}

double Histogram::bin_hi(int bin) const {
  return lo_ + (hi_ - lo_) * (bin + 1) / static_cast<double>(bins_.size());
}

}  // namespace prosim
