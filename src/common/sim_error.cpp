#include "common/sim_error.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace prosim {

const char* to_string(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kLivelock: return "livelock";
    case ErrorCategory::kBarrierMismatch: return "barrier_mismatch";
    case ErrorCategory::kMshrLeak: return "mshr_leak";
    case ErrorCategory::kStarvation: return "starvation";
    case ErrorCategory::kInvariant: return "invariant";
  }
  return "?";
}

const char* to_string(WarpBlockReason reason) {
  switch (reason) {
    case WarpBlockReason::kBarrier: return "barrier";
    case WarpBlockReason::kScoreboard: return "scoreboard";
    case WarpBlockReason::kDrain: return "drain";
    case WarpBlockReason::kFetch: return "fetch";
    case WarpBlockReason::kFuBusy: return "fu_busy";
    case WarpBlockReason::kRunnable: return "runnable";
  }
  return "?";
}

std::string SimError::to_string() const {
  std::ostringstream os;
  os << "SimError[" << prosim::to_string(category) << "] at cycle " << cycle
     << ": " << message;
  if (sm_id >= 0) os << " (sm " << sm_id;
  if (sm_id >= 0 && warp >= 0) os << ", warp " << warp;
  if (sm_id >= 0 && pc >= 0) os << ", pc " << pc;
  if (sm_id >= 0) os << ")";
  for (const WarpBlockInfo& w : warps) {
    os << "\n  sm " << w.sm_id << " warp " << w.warp << " (cta " << w.ctaid
       << ", pc " << w.pc << "): " << prosim::to_string(w.reason);
    if (w.reason == WarpBlockReason::kBarrier) {
      os << " — " << w.warps_at_barrier << "/" << w.warps_live
         << " warps arrived, waiting " << w.barrier_wait << " cycles";
    } else if (w.pending_regs != 0) {
      os << " — waiting on regs {";
      bool first = true;
      for (int r = 0; r < 64; ++r) {
        if ((w.pending_regs & (1ull << r)) == 0) continue;
        if (!first) os << ",";
        os << "r" << r;
        first = false;
      }
      os << "}";
    }
    if (w.reason != WarpBlockReason::kBarrier && w.issue_gap > 0) {
      os << " (no issue for " << w.issue_gap << " cycles)";
    }
  }
  for (const SmHealth& h : sm_health) {
    os << "\n  sm " << h.sm_id << ": " << h.resident_tbs << " resident TBs, "
       << h.live_pending_loads << " pending loads, MSHR occupancy l1="
       << h.l1_mshr_occupancy << " const=" << h.const_mshr_occupancy
       << (h.ldst_busy ? ", LDST busy" : "") << ", " << h.issued
       << " issued total";
  }
  return os.str();
}

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void SimError::write_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"error\": \"" << prosim::to_string(category) << "\",\n";
  os << "  \"message\": ";
  json_string(os, message);
  os << ",\n";
  os << "  \"cycle\": " << cycle << ",\n";
  os << "  \"sm\": " << sm_id << ",\n";
  os << "  \"warp\": " << warp << ",\n";
  os << "  \"pc\": " << pc << ",\n";
  os << "  \"warps\": [";
  for (std::size_t i = 0; i < warps.size(); ++i) {
    const WarpBlockInfo& w = warps[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"sm\": " << w.sm_id << ", \"warp\": " << w.warp
       << ", \"ctaid\": " << w.ctaid << ", \"pc\": " << w.pc
       << ", \"reason\": \"" << prosim::to_string(w.reason)
       << "\", \"pending_regs\": " << w.pending_regs
       << ", \"warps_at_barrier\": " << w.warps_at_barrier
       << ", \"warps_live\": " << w.warps_live
       << ", \"barrier_wait\": " << w.barrier_wait
       << ", \"issue_gap\": " << w.issue_gap << "}";
  }
  os << (warps.empty() ? "],\n" : "\n  ],\n");
  os << "  \"sm_health\": [";
  for (std::size_t i = 0; i < sm_health.size(); ++i) {
    const SmHealth& h = sm_health[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"sm\": " << h.sm_id << ", \"resident_tbs\": "
       << h.resident_tbs << ", \"pending_loads\": " << h.live_pending_loads
       << ", \"l1_mshr\": " << h.l1_mshr_occupancy << ", \"const_mshr\": "
       << h.const_mshr_occupancy << ", \"ldst_busy\": "
       << (h.ldst_busy ? "true" : "false") << ", \"issued\": " << h.issued
       << "}";
  }
  os << (sm_health.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

}  // namespace prosim
