// Per-warp SIMT reconvergence stack (thread-divergence handling).
//
// Entries are {pc, rpc, mask}. The top entry is the executing one; when its
// pc reaches its rpc (the branch's immediate postdominator) it pops and the
// entry below — which was parked at the reconvergence point with the
// superset mask — resumes. Divergent branches turn the current top into the
// reconvergence placeholder and push the not-taken then taken paths, so the
// taken side executes first.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace prosim {

class SimtStack {
 public:
  /// Resets to a single base entry at pc 0. The base entry has rpc -1 and
  /// only disappears when every lane exits.
  void reset(ActiveMask initial_mask);

  bool empty() const { return stack_.empty(); }
  std::int32_t pc() const {
    PROSIM_CHECK(!stack_.empty());
    return stack_.back().pc;
  }
  ActiveMask active() const {
    PROSIM_CHECK(!stack_.empty());
    return stack_.back().mask;
  }
  int depth() const { return static_cast<int>(stack_.size()); }

  /// Sequential advance past a non-branch instruction.
  void advance();

  /// Unconditional control transfer of the whole top entry.
  void jump(std::int32_t target);

  /// Conditional branch executed at the current pc. `taken` must be a
  /// subset of active(). `inst` supplies target and reconvergence pcs.
  void take_branch(const Instruction& inst, ActiveMask taken);

  /// Lanes in `lanes` executed exit: remove them from every entry.
  void exit_lanes(ActiveMask lanes);

 private:
  struct Entry {
    std::int32_t pc;
    std::int32_t rpc;  // -1 for the base entry
    ActiveMask mask;
  };

  /// Pops entries whose pc reached their rpc.
  void merge_pop();

  std::vector<Entry> stack_;
};

}  // namespace prosim
