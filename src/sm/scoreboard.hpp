// Per-warp register scoreboard: tracks destination registers of in-flight
// instructions. An instruction may not issue while any register it reads
// (RAW) or writes (WAW) is pending. Bitmask over the <=64 architectural
// registers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "isa/instruction.hpp"

namespace prosim {

class Scoreboard {
 public:
  explicit Scoreboard(int num_warps) : pending_(num_warps, 0) {}

  void reset(int warp) { pending_[warp] = 0; }

  /// True if `inst` has no RAW/WAW hazard for this warp.
  bool available(int warp, const Instruction& inst) const {
    return (pending_[warp] & regs_of(inst)) == 0;
  }

  void reserve(int warp, std::uint8_t reg) {
    PROSIM_CHECK(reg != kNoReg);
    PROSIM_CHECK_MSG((pending_[warp] & bit(reg)) == 0,
                     "double reservation (WAW should have blocked issue)");
    pending_[warp] |= bit(reg);
  }

  void release(int warp, std::uint8_t reg) {
    PROSIM_CHECK_MSG((pending_[warp] & bit(reg)) != 0,
                     "release of non-pending register");
    pending_[warp] &= ~bit(reg);
  }

  std::uint64_t pending_mask(int warp) const { return pending_[warp]; }

  /// All registers an instruction touches (sources, predicate, dest).
  static std::uint64_t regs_of(const Instruction& inst) {
    std::uint64_t mask = 0;
    mask |= bit_or_zero(inst.src0);
    if (!inst.src1_is_imm) mask |= bit_or_zero(inst.src1);
    mask |= bit_or_zero(inst.src2);
    mask |= bit_or_zero(inst.pred);
    // Atomics have has_dst == false (the dst operand is optional), but a
    // result-returning atomic still reserves dst at issue — include it so
    // WAW/RAW hazards against that reservation stall instead of aborting
    // on a double reservation.
    if (inst.info().has_dst || inst.info().is_atomic)
      mask |= bit_or_zero(inst.dst);
    return mask;
  }

 private:
  static std::uint64_t bit(std::uint8_t reg) { return 1ull << (reg & 63); }
  static std::uint64_t bit_or_zero(std::uint8_t reg) {
    return reg == kNoReg ? 0 : bit(reg);
  }

  std::vector<std::uint64_t> pending_;
};

}  // namespace prosim
