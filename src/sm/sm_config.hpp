// SM (streaming multiprocessor) configuration. Defaults follow the paper's
// Table I (NVIDIA Fermi GTX480): 48 warp slots, 8 TBs, 1536 threads, two
// warp schedulers per SM. Latencies are Fermi-era approximations in core
// cycles.
#pragma once

#include "common/types.hpp"
#include "mem/mem_config.hpp"

namespace prosim {

struct SmConfig {
  int max_warps = 48;
  int max_tbs = 8;
  int max_threads = 1536;
  int num_schedulers = 2;
  int smem_bytes = 48 * 1024;
  int num_registers = 32768;  // 4-byte registers per SM (Table I)

  CacheGeometry l1d{16 * 1024, 128, 4};
  MshrConfig l1_mshr{32, 8};
  /// Ablation switch: false sends every global access past the L1 (MSHR
  /// merging still applies).
  bool l1_enabled = true;

  /// Per-SM read-only constant cache serving `ldc` (Fermi: 8KB per SM).
  /// When disabled, constant loads complete in `const_latency`
  /// unconditionally (the always-hit approximation).
  CacheGeometry const_cache{8 * 1024, 128, 4};
  bool const_cache_enabled = true;
  MshrConfig const_mshr{8, 8};

  // Writeback latencies (cycles from issue to scoreboard release).
  Cycle alu_latency = 10;
  Cycle fp_latency = 18;
  Cycle sfu_latency = 32;
  Cycle smem_latency = 24;
  Cycle l1_hit_latency = 36;
  Cycle const_latency = 24;

  /// Minimum cycles between two SFU issues on one SM (initiation interval).
  Cycle sfu_initiation_interval = 8;

  /// Extra i-buffer refill delay after a control transfer (models the
  /// fetch redirect; see DESIGN.md "simplified fetch").
  Cycle branch_fetch_penalty = 3;

  /// Coalesced transactions the LDST unit dispatches per cycle.
  int ldst_dispatch_per_cycle = 2;

  int smem_banks = 32;
};

}  // namespace prosim
