#include "sm/sm_core.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "isa/semantics.hpp"
#include "sm/coalescer.hpp"

namespace prosim {

SmCore::SmCore(int sm_id, const SmConfig& config, const Program& program,
               GlobalMemory& gmem, MemorySubsystem& mem,
               std::unique_ptr<SchedulerPolicy> policy,
               std::function<bool()> tbs_waiting)
    : sm_id_(sm_id),
      config_(config),
      program_(program),
      gmem_(gmem),
      mem_(mem),
      policy_(std::move(policy)),
      tbs_waiting_(std::move(tbs_waiting)),
      warps_per_tb_(program.num_warps_per_tb()),
      regs_per_thread_(program.info.regs_per_thread),
      max_resident_tbs_(compute_residency(config, program.info)),
      used_warp_slots_(max_resident_tbs_ * warps_per_tb_),
      scoreboard_(config.max_warps),
      l1_(config.l1d),
      l1_mshr_(config.l1_mshr),
      const_cache_(config.const_cache),
      const_mshr_(config.const_mshr) {
  PROSIM_CHECK_MSG(max_resident_tbs_ > 0,
                   "kernel does not fit on the SM at all");
  PROSIM_CHECK_MSG(config_.max_warps <= 64,
                   "ready masks are 64-bit: max_warps must be <= 64");
  warps_.resize(config_.max_warps);
  tbs_.resize(max_resident_tbs_);
  regs_.assign(static_cast<std::size_t>(config_.max_warps) * kWarpSize *
                   regs_per_thread_,
               0);
  warp_progress_.assign(config_.max_warps, 0);
  last_issue_.assign(static_cast<std::size_t>(config_.max_warps), 0);
  tb_progress_.assign(max_resident_tbs_, 0);
  tb_ctaid_.assign(max_resident_tbs_, -1);
  tb_launch_seq_.assign(max_resident_tbs_, 0);

  sched_mask_.assign(static_cast<std::size_t>(config_.num_schedulers), 0);
  for (int w = 0; w < used_warp_slots_; ++w) {
    sched_mask_[static_cast<std::size_t>(w % config_.num_schedulers)] |=
        1ull << w;
  }
  last_stall_.assign(static_cast<std::size_t>(config_.num_schedulers),
                     StallKind::kIdle);

  inst_meta_.resize(program_.code.size());
  for (std::size_t pc = 0; pc < program_.code.size(); ++pc) {
    const Instruction& inst = program_.code[pc];
    inst_meta_[pc] = {Scoreboard::regs_of(inst), inst.info().fu,
                      inst.info().is_exit, false};
  }

  // Static spin-loop detection for stall attribution: a backward branch
  // whose body consists purely of memory polls (loads/atomics), setp, and
  // the branch itself is a busy-wait — the warp re-reads a location until
  // another warp changes it. Bodies that compute (other ALU), store, or
  // synchronize do real work and stay unmarked.
  for (std::size_t pc = 0; pc < program_.code.size(); ++pc) {
    const Instruction& bra = program_.code[pc];
    if (bra.op != Opcode::kBra || bra.target < 0 ||
        static_cast<std::size_t>(bra.target) > pc) {
      continue;
    }
    bool pure_poll = false;
    for (std::size_t q = static_cast<std::size_t>(bra.target); q <= pc; ++q) {
      const Instruction& inst = program_.code[q];
      const OpcodeInfo& oi = inst.info();
      if (q == pc) break;  // the backward branch itself
      if (oi.is_load || oi.is_atomic || inst.op == Opcode::kSetp) {
        if (oi.is_load || oi.is_atomic) pure_poll = true;
        continue;
      }
      pure_poll = false;
      break;
    }
    if (!pure_poll) continue;
    for (std::size_t q = static_cast<std::size_t>(bra.target); q <= pc; ++q) {
      inst_meta_[q].in_spin = true;
    }
  }

  PolicyContext ctx;
  ctx.sm_id = sm_id_;
  ctx.num_warp_slots = used_warp_slots_;
  ctx.num_tb_slots = max_resident_tbs_;
  ctx.warps_per_tb = warps_per_tb_;
  ctx.num_schedulers = config_.num_schedulers;
  ctx.warp_progress = warp_progress_.data();
  ctx.tb_progress = tb_progress_.data();
  ctx.tb_ctaid = tb_ctaid_.data();
  ctx.tb_launch_seq = tb_launch_seq_.data();
  ctx.tbs_waiting = tbs_waiting_;
  policy_->attach(ctx);
}

int SmCore::compute_residency(const SmConfig& config, const KernelInfo& info) {
  const int wpt = (info.block_dim + kWarpSize - 1) / kWarpSize;
  const int padded_threads = wpt * kWarpSize;
  int limit = config.max_tbs;
  limit = std::min(limit, config.max_threads / padded_threads);
  limit = std::min(limit, config.max_warps / wpt);
  if (info.smem_bytes > 0)
    limit = std::min(limit, config.smem_bytes / info.smem_bytes);
  const int regs_per_tb = info.regs_per_thread * padded_threads;
  if (regs_per_tb > 0)
    limit = std::min(limit, config.num_registers / regs_per_tb);
  return limit;
}

bool SmCore::can_accept_tb() const { return resident_tbs_ < max_resident_tbs_; }

void SmCore::launch_tb(int ctaid, Cycle now) {
  PROSIM_CHECK(can_accept_tb());
  int slot = -1;
  for (int t = 0; t < max_resident_tbs_; ++t) {
    if (!tbs_[t].active) {
      slot = t;
      break;
    }
  }
  PROSIM_CHECK(slot >= 0);

  TbCtx& tb = tbs_[slot];
  tb.active = true;
  tb.ctaid = ctaid;
  tb.launch_seq = next_launch_seq_++;
  tb.warps_live = warps_per_tb_;
  tb.warps_at_barrier = 0;
  tb.start_cycle = now;
  tb.smem.assign(static_cast<std::size_t>(program_.info.smem_bytes + 7) / 8,
                 0);

  tb_progress_[slot] = 0;
  tb_ctaid_[slot] = ctaid;
  tb_launch_seq_[slot] = tb.launch_seq;

  for (int i = 0; i < warps_per_tb_; ++i) {
    const int w = slot * warps_per_tb_ + i;
    WarpCtx& wc = warps_[w];
    const int threads =
        std::min(kWarpSize, program_.info.block_dim - i * kWarpSize);
    PROSIM_CHECK(threads > 0);
    const ActiveMask mask =
        threads == kWarpSize ? kFullMask : ((1u << threads) - 1);
    wc.stack.reset(mask);
    wc.allocated = true;
    wc.finished = false;
    wc.at_barrier = false;
    wc.issued_since_launch = false;
    wc.tb_slot = slot;
    wc.ibuffer_ready = now + 1;
    live_mask_ |= 1ull << w;
    scoreboard_.reset(w);
    warp_progress_[w] = 0;
    last_issue_[static_cast<std::size_t>(w)] = now;
    std::memset(&reg(w, 0, 0), 0,
                static_cast<std::size_t>(kWarpSize) * regs_per_thread_ *
                    sizeof(RegValue));
  }
  ++resident_tbs_;
  policy_->on_tb_launch(slot);
  if (trace_ != nullptr) trace_->on_tb_launch(sm_id_, ctaid, now);
}

void SmCore::retire_tb(int tb_slot, Cycle now) {
  TbCtx& tb = tbs_[tb_slot];
  timeline_.push_back({tb.ctaid, tb.start_cycle, now});
  ++stats_.tbs_executed;

  // Warp-level divergence: spread of sibling-warp completion times.
  Cycle first = kNoCycle;
  Cycle last = 0;
  for (int i = 0; i < warps_per_tb_; ++i) {
    const Cycle f = warps_[tb_slot * warps_per_tb_ + i].finish_cycle;
    first = std::min(first, f);
    last = std::max(last, f);
  }
  stats_.warp_finish_disparity_sum += last - first;

  if (register_dump_ != nullptr) {
    for (int tid = 0; tid < program_.info.block_dim; ++tid) {
      const int w = tb_slot * warps_per_tb_ + tid / kWarpSize;
      const int lane = tid % kWarpSize;
      RegValue* out =
          register_dump_ +
          (static_cast<std::size_t>(tb.ctaid) * program_.info.block_dim +
           tid) *
              regs_per_thread_;
      std::memcpy(out, &reg(w, lane, 0),
                  static_cast<std::size_t>(regs_per_thread_) *
                      sizeof(RegValue));
    }
  }

  policy_->on_tb_finish(tb_slot);
  if (trace_ != nullptr)
    trace_->on_tb_retire(sm_id_, tb.ctaid, tb.start_cycle, now);
  tb.active = false;
  tb_ctaid_[tb_slot] = -1;
  --resident_tbs_;
}

bool SmCore::drained() const {
  return resident_tbs_ == 0 && !ldst_op_.valid && wb_.empty() &&
         live_pending_loads_ == 0;
}

// ---------------------------------------------------------------------------
// Preemptive yield/resume (preemptive_slo admission; docs/SERVING.md)
// ---------------------------------------------------------------------------

bool SmCore::all_resident_spin_stuck() const {
  if (resident_tbs_ == 0) return false;
  for (int t = 0; t < max_resident_tbs_; ++t) {
    if (!tbs_[t].active) continue;
    for (int i = 0; i < warps_per_tb_; ++i) {
      const WarpCtx& wc = warps_[t * warps_per_tb_ + i];
      if (wc.finished || wc.at_barrier) continue;
      // A warp that has not issued since its TB was (re)launched is not
      // evidence of a livelock — its spin-classified PC may fall straight
      // through under the current memory state (e.g. a flag written while
      // the TB was parked). Requiring one issue per residency span also
      // bounds the yield rotation: every round makes real progress.
      if (!wc.issued_since_launch) return false;
      if (!inst_meta_[static_cast<std::size_t>(wc.stack.pc())].in_spin)
        return false;
    }
  }
  return true;
}

int SmCore::oldest_tb_slot() const {
  int best = -1;
  for (int t = 0; t < max_resident_tbs_; ++t) {
    if (!tbs_[t].active) continue;
    if (best < 0 || tbs_[t].launch_seq < tbs_[best].launch_seq) best = t;
  }
  return best;
}

void SmCore::request_yield(int tb_slot) {
  PROSIM_CHECK(pending_yield_slot_ < 0 && tbs_[tb_slot].active);
  pending_yield_slot_ = tb_slot;
  for (int i = 0; i < warps_per_tb_; ++i) {
    yield_mask_ |= 1ull << (tb_slot * warps_per_tb_ + i);
  }
}

bool SmCore::yield_quiescent() const {
  PROSIM_CHECK(pending_yield_slot_ >= 0);
  const int slot = pending_yield_slot_;
  // An LDST op still dispatching for one of the TB's warps pins the TB; an
  // in-flight transaction with no scoreboard reservation (a store, or a
  // dst-less atomic whose functional effect landed at issue) does not —
  // its eventual completion never touches warp state.
  if (ldst_op_.valid && warps_[ldst_op_.warp].tb_slot == slot) return false;
  for (int i = 0; i < warps_per_tb_; ++i) {
    // pending_mask == 0 proves no writeback or in-flight load can still
    // name this warp: every reserve is released exactly once, by the
    // wb_ event or the final load transaction.
    if (scoreboard_.pending_mask(slot * warps_per_tb_ + i) != 0) return false;
  }
  return true;
}

TbCheckpoint SmCore::take_yield_checkpoint(Cycle now) {
  PROSIM_CHECK(pending_yield_slot_ >= 0 && yield_quiescent());
  const int slot = pending_yield_slot_;
  TbCtx& tb = tbs_[slot];

  TbCheckpoint ckpt;
  ckpt.ctaid = tb.ctaid;
  ckpt.tb_progress = tb_progress_[slot];
  ckpt.smem = std::move(tb.smem);
  ckpt.warps.resize(static_cast<std::size_t>(warps_per_tb_));
  for (int i = 0; i < warps_per_tb_; ++i) {
    const int w = slot * warps_per_tb_ + i;
    WarpCtx& wc = warps_[w];
    TbCheckpoint::WarpCkpt& out = ckpt.warps[static_cast<std::size_t>(i)];
    out.stack = wc.stack;
    out.finished = wc.finished;
    out.at_barrier = wc.at_barrier;
    out.barrier_arrive = wc.barrier_arrive;
    out.finish_cycle = wc.finish_cycle;
    out.progress = warp_progress_[w];
    live_mask_ &= ~(1ull << w);
    wc.allocated = false;
  }
  const std::size_t reg_base = static_cast<std::size_t>(slot) *
                               warps_per_tb_ * kWarpSize * regs_per_thread_;
  const std::size_t reg_count = static_cast<std::size_t>(warps_per_tb_) *
                                kWarpSize * regs_per_thread_;
  ckpt.regs.assign(regs_.begin() + static_cast<std::ptrdiff_t>(reg_base),
                   regs_.begin() +
                       static_cast<std::ptrdiff_t>(reg_base + reg_count));

  // Close the residency span for the timeline, but the TB is not executed:
  // tbs_executed and the finish-disparity stat count only true retirements.
  timeline_.push_back({tb.ctaid, tb.start_cycle, now});
  policy_->on_tb_finish(slot);
  if (trace_ != nullptr)
    trace_->on_tb_retire(sm_id_, tb.ctaid, tb.start_cycle, now);
  tb.active = false;
  tb_ctaid_[slot] = -1;
  --resident_tbs_;
  yield_mask_ = 0;
  pending_yield_slot_ = -1;
  return ckpt;
}

void SmCore::resume_tb(const TbCheckpoint& ckpt, Cycle now) {
  PROSIM_CHECK(can_accept_tb());
  int slot = -1;
  for (int t = 0; t < max_resident_tbs_; ++t) {
    if (!tbs_[t].active) {
      slot = t;
      break;
    }
  }
  PROSIM_CHECK(slot >= 0);

  TbCtx& tb = tbs_[slot];
  tb.active = true;
  tb.ctaid = ckpt.ctaid;
  tb.launch_seq = next_launch_seq_++;
  tb.warps_live = 0;
  tb.warps_at_barrier = 0;
  tb.start_cycle = now;
  tb.smem = ckpt.smem;

  tb_progress_[slot] = ckpt.tb_progress;
  tb_ctaid_[slot] = ckpt.ctaid;
  tb_launch_seq_[slot] = tb.launch_seq;

  for (int i = 0; i < warps_per_tb_; ++i) {
    const int w = slot * warps_per_tb_ + i;
    const TbCheckpoint::WarpCkpt& in = ckpt.warps[static_cast<std::size_t>(i)];
    WarpCtx& wc = warps_[w];
    wc.stack = in.stack;
    wc.allocated = true;
    wc.finished = in.finished;
    wc.at_barrier = in.at_barrier;
    wc.issued_since_launch = false;
    wc.barrier_arrive = in.barrier_arrive;
    wc.finish_cycle = in.finish_cycle;
    wc.tb_slot = slot;
    wc.ibuffer_ready = now + 1;
    scoreboard_.reset(w);
    warp_progress_[w] = in.progress;
    last_issue_[static_cast<std::size_t>(w)] = now;
    if (!in.finished) {
      ++tb.warps_live;
      if (in.at_barrier) {
        ++tb.warps_at_barrier;
      } else {
        live_mask_ |= 1ull << w;
      }
    }
  }
  // A checkpointable TB always had a non-barrier live warp (the spinner),
  // so the restored barrier can never be complete-but-unreleased.
  PROSIM_CHECK(tb.warps_live > tb.warps_at_barrier);
  std::memcpy(&reg(slot * warps_per_tb_, 0, 0), ckpt.regs.data(),
              ckpt.regs.size() * sizeof(RegValue));
  ++resident_tbs_;
  policy_->on_tb_launch(slot);
  if (trace_ != nullptr) trace_->on_tb_launch(sm_id_, ckpt.ctaid, now);
}

// ---------------------------------------------------------------------------
// Cycle phases
// ---------------------------------------------------------------------------

bool SmCore::cycle(Cycle now) {
  const bool local = cycle_local(now);
  return cycle_rest(now) || local;
}

bool SmCore::cycle_local(Cycle now) {
  stats_.occupancy_tb_cycles += static_cast<std::uint64_t>(resident_tbs_);
  bool active = drain_responses(now);
  active |= drain_writebacks(now);
  return active;
}

bool SmCore::cycle_rest(Cycle now) {
  bool active = false;
  if (ldst_op_.valid) {
    ldst_cycle(now);
    active = true;
  }
  active |= issue_cycle(now);
  if (trace_warp_states_enabled_) trace_warp_states(now);
  return active;
}

void SmCore::set_trace_sink(TraceSink* trace) {
  trace_ = trace;
  trace_warp_states_enabled_ = trace != nullptr && trace->wants_warp_states();
  if (trace_ != nullptr) {
    last_cause_.assign(static_cast<std::size_t>(config_.num_schedulers),
                       StallCause::kNoWarp);
    warp_trace_state_.assign(static_cast<std::size_t>(config_.max_warps),
                             WarpState::kUnallocated);
    warp_state_since_.assign(static_cast<std::size_t>(config_.max_warps), 0);
  }
  policy_->set_trace(trace, sm_id_);
}

void SmCore::trace_finalize(Cycle end) {
  if (!trace_warp_states_enabled_) return;
  for (int w = 0; w < used_warp_slots_; ++w) {
    const WarpState prev = warp_trace_state_[static_cast<std::size_t>(w)];
    if (prev == WarpState::kUnallocated) continue;
    trace_->on_warp_state(sm_id_, w, prev,
                          warp_state_since_[static_cast<std::size_t>(w)],
                          WarpState::kUnallocated, end);
    warp_trace_state_[static_cast<std::size_t>(w)] = WarpState::kUnallocated;
    warp_state_since_[static_cast<std::size_t>(w)] = end;
  }
}

void SmCore::skip_cycles(Cycle count) {
  stats_.occupancy_tb_cycles +=
      count * static_cast<std::uint64_t>(resident_tbs_);
  for (int sched = 0; sched < config_.num_schedulers; ++sched) {
    stats_.sched_cycles += count;
    switch (last_stall_[static_cast<std::size_t>(sched)]) {
      case StallKind::kPipeline:
        stats_.pipeline_stalls += count;
        break;
      case StallKind::kScoreboard:
        stats_.scoreboard_stalls += count;
        break;
      case StallKind::kIdle:
        stats_.idle_stalls += count;
        break;
    }
  }
  // A skip only follows a cycle in which every scheduler recorded a stall,
  // and every input to the fine classification is constant across the span
  // (next_event covers them all), so the last cause repeats verbatim. Warp
  // states are likewise constant: no per-warp events are needed, and slice
  // durations span the skip via the transition cycle numbers.
  if (trace_ != nullptr) {
    for (int sched = 0; sched < config_.num_schedulers; ++sched) {
      trace_->on_sched_cycles(sm_id_, sched,
                              last_cause_[static_cast<std::size_t>(sched)],
                              count);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel staging (see docs/PERF.md, "Sharding one simulation across SMs")
// ---------------------------------------------------------------------------

void SmCore::begin_staged_cycle(int granted_injects) {
  staged_ = true;
  staged_grants_ = granted_injects;
  staged_injects_.clear();
  staged_stores_.clear();
  staged_base_reads_.clear();
  // The shared image may have gained pages from other SMs' commits since
  // the last cycle; a cached "page absent" must not survive the barrier.
  staged_lookup_ = {};
}

void SmCore::commit_staged_cycle(Cycle now) {
  staged_ = false;
  for (const MemRequest& req : staged_injects_) mem_.inject(req, now);
  for (const auto& [addr, value] : staged_stores_) gmem_.store(addr, value);
}

int SmCore::plan_inject_admission(int* free_by_partition) const {
  if (!ldst_op_.valid) return 0;
  // Mirror of ldst_cycle's dispatch loop, read-only. Lines within one op
  // are distinct (the coalescer dedupes), so probing instead of mutating
  // cannot change a later line's classification; would-be MSHR allocations
  // are tracked in `planned_allocs`. Faults never reach this path — the
  // Gpu disables the parallel step whenever an injector is attached.
  const Interconnect& icnt = mem_.interconnect();
  int budget = config_.ldst_dispatch_per_cycle;
  int granted = 0;
  int planned_allocs = 0;
  for (int i = ldst_op_.next; budget > 0 && i < ldst_op_.num_lines;
       ++i, --budget) {
    const Addr line = ldst_op_.lines[i];
    if (ldst_op_.kind == MemReqKind::kRead) {
      const bool is_const = ldst_op_.is_const;
      const Cache& cache = is_const ? const_cache_ : l1_;
      const Mshr<std::uint32_t>& mshr = is_const ? const_mshr_ : l1_mshr_;
      const bool cacheable = is_const || config_.l1_enabled;
      if (cacheable && cache.probe(line)) continue;  // hit: no inject
      if (mshr.has(line)) {
        if (!mshr.can_merge(line)) break;  // dispatch stalls this cycle
        continue;                          // merge: no inject
      }
      if (!mshr.can_allocate_plus(planned_allocs)) break;
      int& free = free_by_partition[icnt.partition_of(line)];
      if (free == 0) break;  // port full: ldst_cycle returns here
      --free;
      ++granted;
      ++planned_allocs;
    } else {
      int& free = free_by_partition[icnt.partition_of(line)];
      if (free == 0) break;
      --free;
      ++granted;
    }
  }
  return granted;
}

bool SmCore::can_inject_gated(Addr line) {
  if (!staged_) return mem_.can_inject(line);
  if (staged_grants_ == 0) return false;
  --staged_grants_;
  return true;
}

void SmCore::inject_or_stage(Addr line, MemReqKind kind, std::uint32_t token,
                             bool is_const, Cycle now) {
  if (staged_) {
    staged_injects_.push_back({line, kind, sm_id_, token, is_const});
  } else {
    mem_.inject({line, kind, sm_id_, token, is_const}, now);
  }
}

RegValue SmCore::staged_load(Addr addr) {
  // Same-cycle own stores win, matching the sequential interleaving where
  // this SM's earlier instructions already reached global memory. A hit
  // here does not depend on the shared image, so it needs no conflict log.
  for (auto it = staged_stores_.rbegin(); it != staged_stores_.rend(); ++it) {
    if (it->first == addr) return it->second;
  }
  staged_base_reads_.push_back(addr);
  return gmem_.load(addr, staged_lookup_);
}

RegValue SmCore::gmem_load(Addr addr) {
  return staged_ ? staged_load(addr) : gmem_.load(addr);
}

void SmCore::gmem_store(Addr addr, RegValue value) {
  if (staged_) {
    staged_stores_.emplace_back(addr, value);
  } else {
    gmem_.store(addr, value);
  }
}

RegValue SmCore::gmem_atomic_add(Addr addr, RegValue delta) {
  if (!staged_) return gmem_.atomic_add(addr, delta);
  const RegValue old = staged_load(addr);
  staged_stores_.emplace_back(
      addr, static_cast<RegValue>(static_cast<std::uint64_t>(old) +
                                  static_cast<std::uint64_t>(delta)));
  return old;
}

RegValue SmCore::gmem_atomic_cas(Addr addr, RegValue expected,
                                 RegValue desired) {
  if (!staged_) return gmem_.atomic_cas(addr, expected, desired);
  const RegValue old = staged_load(addr);
  // A failed CAS writes nothing, so it must not enter the store log: the
  // log is also this SM's write set for conflict detection, and a no-op
  // entry would manufacture write-read conflicts the sequential path
  // cannot have.
  if (old == expected) staged_stores_.emplace_back(addr, desired);
  return old;
}

RegValue SmCore::gmem_atomic_exch(Addr addr, RegValue value) {
  if (!staged_) return gmem_.atomic_exch(addr, value);
  const RegValue old = staged_load(addr);
  staged_stores_.emplace_back(addr, value);
  return old;
}

Cycle SmCore::next_event(Cycle now) const {
  // An in-flight LDST op dispatches every cycle — never skip over it.
  if (ldst_op_.valid) return now + 1;
  Cycle t = kNoCycle;
  if (!wb_.empty()) t = std::min(t, wb_.top().at);  // > now after drain
  if (sfu_ready_at_ > now) t = std::min(t, sfu_ready_at_);
  if (ldst_busy_until_ > now) t = std::min(t, ldst_busy_until_);
  std::uint64_t pending = live_mask_;
  while (pending != 0) {
    const int w = std::countr_zero(pending);
    pending &= pending - 1;
    const Cycle r = warps_[w].ibuffer_ready;
    if (r > now) t = std::min(t, r);
  }
  t = std::min(t, policy_->next_wakeup(now));
  return t;
}

bool SmCore::drain_responses(Cycle now) {
  bool any = false;
  while (mem_.has_response(sm_id_)) {
    any = true;
    const MemResponse resp = mem_.pop_response(sm_id_);
    if (resp.is_atomic) {
      // Atomics bypass the L1; the token (if any) is the pending load.
      if (resp.token != kNoToken) complete_load_transaction(resp.token, now);
      continue;
    }
    if (resp.is_const) {
      const_cache_.fill(resp.line_addr, /*dirty=*/false);
      for (std::uint32_t token : const_mshr_.release(resp.line_addr)) {
        complete_load_transaction(token, now);
      }
      continue;
    }
    if (config_.l1_enabled) l1_.fill(resp.line_addr, /*dirty=*/false);
    for (std::uint32_t token : l1_mshr_.release(resp.line_addr)) {
      complete_load_transaction(token, now);
    }
  }
  return any;
}

bool SmCore::drain_writebacks(Cycle now) {
  bool any = false;
  while (!wb_.empty() && wb_.top().at <= now) {
    any = true;
    const WbEvent ev = wb_.top();
    wb_.pop();
    if (ev.kind == WbKind::kRegRelease) {
      scoreboard_.release(ev.warp, ev.reg);
    } else {
      complete_load_transaction(ev.token, now);
    }
  }
  return any;
}

void SmCore::ldst_cycle(Cycle now) {
  if (!ldst_op_.valid) return;
  int budget = config_.ldst_dispatch_per_cycle;
  while (budget > 0 && ldst_op_.next < ldst_op_.num_lines) {
    const Addr line = ldst_op_.lines[ldst_op_.next];
    switch (ldst_op_.kind) {
      case MemReqKind::kRead: {
        // Constant fetches go through the per-SM constant cache; global
        // loads through the L1D. Same miss machinery, separate tags.
        const bool is_const = ldst_op_.is_const;
        Cache& cache = is_const ? const_cache_ : l1_;
        Mshr<std::uint32_t>& mshr = is_const ? const_mshr_ : l1_mshr_;
        const bool cacheable = is_const || config_.l1_enabled;
        const Cycle hit_latency =
            is_const ? config_.const_latency : config_.l1_hit_latency;
        if (cacheable && cache.access(line)) {
          ++cache.hits;
          wb_.push({now + hit_latency, WbKind::kLoadComplete, 0, 0,
                    ldst_op_.token});
          break;
        }
        if (mshr.has(line)) {
          if (!mshr.can_merge(line)) {
            ++mshr.allocation_fails;
            return;  // retry next cycle
          }
          ++cache.misses;
          ++mshr.merges;
          mshr.merge(line, ldst_op_.token);
          break;
        }
        if (!mshr.can_allocate() || !can_inject_gated(line) ||
            (faults_ != nullptr && faults_->mshr_blocked(sm_id_, now))) {
          ++mshr.allocation_fails;
          return;
        }
        ++cache.misses;
        mshr.allocate(line, ldst_op_.token);
        inject_or_stage(line, MemReqKind::kRead, 0, is_const, now);
        break;
      }
      case MemReqKind::kWrite: {
        if (!can_inject_gated(line)) return;
        l1_.invalidate(line);  // write-evict, write-through
        inject_or_stage(line, MemReqKind::kWrite, 0, false, now);
        break;
      }
      case MemReqKind::kAtomic: {
        if (!can_inject_gated(line)) return;
        l1_.invalidate(line);  // atomics operate at the L2
        inject_or_stage(line, MemReqKind::kAtomic, ldst_op_.token, false, now);
        break;
      }
    }
    ++ldst_op_.next;
    --budget;
  }
  if (ldst_op_.next == ldst_op_.num_lines) ldst_op_.valid = false;
}

bool SmCore::fu_can_accept(const Instruction& inst, Cycle now) const {
  switch (inst.info().fu) {
    case FuType::kSpInt:
    case FuType::kSpFp:
    case FuType::kControl:
      return true;
    case FuType::kSfu:
      return sfu_ready_at_ <= now;
    case FuType::kMem:
      return !ldst_op_.valid && ldst_busy_until_ <= now;
  }
  return false;
}

bool SmCore::issue_cycle(Cycle now) {
  policy_->begin_cycle(now);
  bool issued_any = false;
  issued_now_mask_ = 0;
  for (int sched = 0; sched < config_.num_schedulers; ++sched) {
    ++stats_.sched_cycles;
    bool any_valid = false;
    bool any_fu_blocked = false;
    std::uint64_t ready = 0;
    // Candidates: allocated, unfinished, not at a barrier (live_mask_),
    // not draining toward a yield checkpoint (~yield_mask_), owned by this
    // hardware scheduler, and visible per the policy's consider mask.
    // Iterating set bits replaces the strided probe of every warp slot;
    // the per-warp checks are unchanged.
    std::uint64_t candidates =
        live_mask_ & ~yield_mask_ &
        sched_mask_[static_cast<std::size_t>(sched)] &
        policy_->consider_mask(sched);
    while (candidates != 0) {
      const int w = std::countr_zero(candidates);
      candidates &= candidates - 1;
      const WarpCtx& wc = warps_[w];
      if (wc.ibuffer_ready > now) continue;
      const InstMeta& meta = inst_meta_[static_cast<std::size_t>(wc.stack.pc())];
      const std::uint64_t pending = scoreboard_.pending_mask(w);
      any_valid = true;
      if ((pending & meta.regs) != 0) continue;
      // A warp may only retire once all its in-flight writebacks and loads
      // have drained; otherwise the slot could be re-used by a new TB while
      // stale completions are still queued.
      if (meta.is_exit && pending != 0) continue;
      const bool can_accept =
          meta.fu == FuType::kSfu
              ? sfu_ready_at_ <= now
              : (meta.fu != FuType::kMem ||
                 (!ldst_op_.valid && ldst_busy_until_ <= now));
      if (!can_accept) {
        any_fu_blocked = true;
        continue;
      }
      ready |= 1ull << w;
    }

    if (ready != 0) {
      const int w = policy_->pick(sched, ready, now);
      PROSIM_CHECK_MSG(w >= 0 && w < used_warp_slots_ &&
                           (ready & (1ull << w)) != 0,
                       "policy picked a warp outside the ready mask");
      const Instruction& inst =
          program_.code[static_cast<std::size_t>(warps_[w].stack.pc())];
      issue_warp(w, inst, now);
      ++stats_.issued;
      issued_any = true;
      issued_now_mask_ |= 1ull << w;
      if (trace_ != nullptr)
        trace_->on_sched_cycles(sm_id_, sched, StallCause::kIssued, 1);
    } else if (any_fu_blocked) {
      ++stats_.pipeline_stalls;
      last_stall_[static_cast<std::size_t>(sched)] = StallKind::kPipeline;
      if (trace_ != nullptr) {
        last_cause_[static_cast<std::size_t>(sched)] = StallCause::kFuBusy;
        trace_->on_sched_cycles(sm_id_, sched, StallCause::kFuBusy, 1);
      }
    } else if (any_valid) {
      ++stats_.scoreboard_stalls;
      last_stall_[static_cast<std::size_t>(sched)] = StallKind::kScoreboard;
      if (trace_ != nullptr) {
        const StallCause cause = classify_scoreboard(sched, now);
        last_cause_[static_cast<std::size_t>(sched)] = cause;
        trace_->on_sched_cycles(sm_id_, sched, cause, 1);
      }
    } else {
      ++stats_.idle_stalls;
      last_stall_[static_cast<std::size_t>(sched)] = StallKind::kIdle;
      if (trace_ != nullptr) {
        const StallCause cause = classify_idle(sched, now);
        last_cause_[static_cast<std::size_t>(sched)] = cause;
        trace_->on_sched_cycles(sm_id_, sched, cause, 1);
      }
    }
  }
  return issued_any;
}

// ---------------------------------------------------------------------------
// Tracing (never reached without a sink attached; off the untraced path)
// ---------------------------------------------------------------------------

bool SmCore::regs_mem_pending(int warp, std::uint64_t regs) const {
  for (const PendingLoad& pl : pending_loads_) {
    if (pl.valid && pl.warp == warp && pl.dst < 64 &&
        (regs & (1ull << pl.dst)) != 0)
      return true;
  }
  return false;
}

StallCause SmCore::classify_scoreboard(int sched, Cycle now) const {
  // Re-walk the candidates the issue scan just classified: in the
  // scoreboard branch every fetch-ready candidate is register-blocked.
  // When every blocked candidate sits inside a detected spin loop the
  // scheduler is stalled purely by busy-waiting — attribute kSpinWait;
  // otherwise refine into mem vs alu as before.
  bool any_blocked = false;
  bool all_spin = true;
  bool mem = false;
  std::uint64_t candidates =
      live_mask_ & ~yield_mask_ &
      sched_mask_[static_cast<std::size_t>(sched)] &
      policy_->consider_mask(sched);
  while (candidates != 0) {
    const int w = std::countr_zero(candidates);
    candidates &= candidates - 1;
    const WarpCtx& wc = warps_[w];
    if (wc.ibuffer_ready > now) continue;
    const InstMeta& meta =
        inst_meta_[static_cast<std::size_t>(wc.stack.pc())];
    const std::uint64_t pending = scoreboard_.pending_mask(w);
    std::uint64_t blocked = pending & meta.regs;
    if (meta.is_exit) blocked |= pending;  // exit drains all writebacks
    if (blocked == 0) continue;
    any_blocked = true;
    if (!meta.in_spin) all_spin = false;
    if (regs_mem_pending(w, blocked)) mem = true;
  }
  if (any_blocked && all_spin) return StallCause::kSpinWait;
  return mem ? StallCause::kScoreboardMem : StallCause::kScoreboardAlu;
}

StallCause SmCore::classify_idle(int sched, Cycle now) const {
  const std::uint64_t smask = sched_mask_[static_cast<std::size_t>(sched)];
  // In the idle branch every considered live warp is refilling its
  // instruction buffer (otherwise the cycle would have been classified
  // scoreboard or better).
  if ((live_mask_ & ~yield_mask_ & smask & policy_->consider_mask(sched)) != 0)
    return StallCause::kFetch;
  bool barrier = false;
  bool finish = false;
  std::uint64_t scan = smask;
  while (scan != 0) {
    const int w = std::countr_zero(scan);
    scan &= scan - 1;
    const WarpCtx& wc = warps_[w];
    if (!wc.allocated) continue;
    if (!wc.finished && wc.at_barrier) {
      barrier = true;
    } else if (wc.finished && tbs_[wc.tb_slot].active) {
      finish = true;
    }
  }
  if (barrier) return StallCause::kBarrierWait;
  if (finish) return StallCause::kFinishWait;
  if ((live_mask_ & smask &
       (~policy_->consider_mask(sched) | yield_mask_)) != 0)
    return StallCause::kThrottled;
  return StallCause::kNoWarp;
}

WarpState SmCore::trace_state_of(int warp, Cycle now) const {
  const WarpCtx& wc = warps_[warp];
  if (!wc.allocated) return WarpState::kUnallocated;
  // Issue wins over the post-issue flags a bar/exit just set, so summed
  // kIssued warp-cycles equal SmStats::issued exactly; the barrier /
  // finish window then opens at the next executed cycle.
  if ((issued_now_mask_ & (1ull << warp)) != 0) return WarpState::kIssued;
  if (wc.finished)
    return tbs_[wc.tb_slot].active ? WarpState::kFinishWait
                                   : WarpState::kUnallocated;
  if (wc.at_barrier) return WarpState::kBarrierWait;
  if (wc.ibuffer_ready > now) return WarpState::kFetch;
  const InstMeta& meta = inst_meta_[static_cast<std::size_t>(wc.stack.pc())];
  const std::uint64_t pending = scoreboard_.pending_mask(warp);
  std::uint64_t blocked = pending & meta.regs;
  if (meta.is_exit) blocked |= pending;
  if (blocked != 0) {
    if (meta.in_spin) return WarpState::kSpinWait;
    return regs_mem_pending(warp, blocked) ? WarpState::kMemPending
                                           : WarpState::kScoreboard;
  }
  const bool can_accept =
      meta.fu == FuType::kSfu
          ? sfu_ready_at_ <= now
          : (meta.fu != FuType::kMem ||
             (!ldst_op_.valid && ldst_busy_until_ <= now));
  return can_accept ? WarpState::kEligible : WarpState::kFuBusy;
}

void SmCore::trace_warp_states(Cycle now) {
  for (int w = 0; w < used_warp_slots_; ++w) {
    const WarpState cur = trace_state_of(w, now);
    const WarpState prev = warp_trace_state_[static_cast<std::size_t>(w)];
    if (cur == prev) continue;
    trace_->on_warp_state(sm_id_, w, prev,
                          warp_state_since_[static_cast<std::size_t>(w)], cur,
                          now);
    warp_trace_state_[static_cast<std::size_t>(w)] = cur;
    warp_state_since_[static_cast<std::size_t>(w)] = now;
  }
}

// ---------------------------------------------------------------------------
// Issue / functional execution
// ---------------------------------------------------------------------------

void SmCore::schedule_release(int warp, std::uint8_t reg_idx, Cycle at) {
  wb_.push({at, WbKind::kRegRelease, warp, reg_idx, 0});
}

std::uint32_t SmCore::alloc_pending_load(int warp, std::uint8_t dst,
                                         int outstanding) {
  std::uint32_t token;
  if (!free_pending_loads_.empty()) {
    token = free_pending_loads_.back();
    free_pending_loads_.pop_back();
  } else {
    token = static_cast<std::uint32_t>(pending_loads_.size());
    pending_loads_.emplace_back();
  }
  pending_loads_[token] = {warp, dst, outstanding, true};
  ++live_pending_loads_;
  return token;
}

void SmCore::complete_load_transaction(std::uint32_t token, Cycle) {
  PendingLoad& pl = pending_loads_[token];
  PROSIM_CHECK(pl.valid && pl.outstanding > 0);
  if (--pl.outstanding == 0) {
    scoreboard_.release(pl.warp, pl.dst);
    pl.valid = false;
    free_pending_loads_.push_back(token);
    --live_pending_loads_;
  }
}

void SmCore::issue_warp(int warp, const Instruction& inst, Cycle now) {
  WarpCtx& wc = warps_[warp];
  const ActiveMask active = wc.stack.active();
  const int lanes = popcount_mask(active);
  const int tb_slot = wc.tb_slot;

  warp_progress_[warp] += static_cast<std::uint64_t>(lanes);
  wc.issued_since_launch = true;
  last_issue_[static_cast<std::size_t>(warp)] = now;
  tb_progress_[tb_slot] += static_cast<std::uint64_t>(lanes);
  stats_.thread_insts += static_cast<std::uint64_t>(lanes);
  ++stats_.warp_insts;
  const bool long_latency =
      inst.op == Opcode::kLdg || inst.op == Opcode::kAtomGAdd ||
      inst.op == Opcode::kAtomGCas || inst.op == Opcode::kAtomGExch;
  policy_->on_warp_issue(warp, lanes, long_latency);

  const std::int32_t prev_pc = wc.stack.pc();

  switch (inst.info().fu) {
    case FuType::kControl:
      if (inst.op == Opcode::kBra) {
        execute_branch(warp, inst, active);
      } else if (inst.op == Opcode::kBar) {
        wc.stack.advance();
        do_barrier(warp, now);
      } else {  // exit
        do_exit(warp, active, now);
      }
      break;
    case FuType::kMem:
      execute_memory(warp, inst, active, now);
      break;
    case FuType::kSfu:
      sfu_ready_at_ = now + config_.sfu_initiation_interval;
      execute_alu(warp, inst, active);
      wc.stack.advance();
      scoreboard_.reserve(warp, inst.dst);
      schedule_release(warp, inst.dst, now + config_.sfu_latency);
      break;
    case FuType::kSpInt:
    case FuType::kSpFp: {
      if (inst.op != Opcode::kNop) execute_alu(warp, inst, active);
      wc.stack.advance();
      if (inst.info().has_dst) {
        const Cycle lat = inst.info().fu == FuType::kSpFp
                              ? config_.fp_latency
                              : config_.alu_latency;
        scoreboard_.reserve(warp, inst.dst);
        schedule_release(warp, inst.dst, now + lat);
      }
      break;
    }
  }

  if (wc.finished || wc.at_barrier) return;
  PROSIM_CHECK(!wc.stack.empty());
  const std::int32_t new_pc = wc.stack.pc();
  const bool redirected = new_pc != prev_pc + 1;
  wc.ibuffer_ready =
      now + 1 + (redirected ? config_.branch_fetch_penalty : 0);
}

void SmCore::execute_alu(int warp, const Instruction& inst,
                         ActiveMask active) {
  const int tb_slot = warps_[warp].tb_slot;
  const int ctaid = tbs_[tb_slot].ctaid;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    RegValue result;
    switch (inst.op) {
      case Opcode::kMov:
        result = reg(warp, lane, inst.src0);
        break;
      case Opcode::kMovi:
        result = inst.imm;
        break;
      case Opcode::kS2r: {
        const ThreadGeom geom{tid_of(warp, lane), ctaid,
                              program_.info.block_dim,
                              program_.info.grid_dim};
        result = eval_sreg(inst.sreg, geom);
        break;
      }
      default: {
        const RegValue a = reg_or_zero(warp, lane, inst.src0);
        const RegValue b =
            inst.src1_is_imm ? inst.imm : reg_or_zero(warp, lane, inst.src1);
        const RegValue c = reg_or_zero(warp, lane, inst.src2);
        result = eval_alu(inst, a, b, c);
        break;
      }
    }
    reg(warp, lane, inst.dst) = result;
  }
}

void SmCore::execute_branch(int warp, const Instruction& inst,
                            ActiveMask active) {
  WarpCtx& wc = warps_[warp];
  if (inst.pred == kNoReg) {
    wc.stack.jump(inst.target);
    return;
  }
  ActiveMask taken = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    const bool p = reg(warp, lane, inst.pred) != 0;
    if (inst.pred_invert ? !p : p) taken |= 1u << lane;
  }
  wc.stack.take_branch(inst, taken);
}

void SmCore::salt_lines(int count) {
  if (addr_salt_ == 0) return;
  for (int i = 0; i < count; ++i) ldst_op_.lines[i] += addr_salt_;
}

void SmCore::execute_memory(int warp, const Instruction& inst,
                            ActiveMask active, Cycle now) {
  WarpCtx& wc = warps_[warp];
  TbCtx& tb = tbs_[wc.tb_slot];

  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    lane_addrs_[lane] = static_cast<Addr>(
        static_cast<std::uint64_t>(reg_or_zero(warp, lane, inst.src0)) +
        static_cast<std::uint64_t>(inst.imm));
  }

  auto smem_word = [&](int lane) -> RegValue& {
    const Addr addr = lane_addrs_[lane];
    PROSIM_REQUIRE((addr & 7) == 0,
                   SimError::make(ErrorCategory::kInvariant,
                                  "unaligned shared-memory access")
                       .at_cycle(now).on_sm(sm_id_).on_warp(warp)
                       .at_pc(wc.stack.pc()));
    const std::size_t word = addr >> 3;
    PROSIM_REQUIRE(word < tb.smem.size(),
                   SimError::make(ErrorCategory::kInvariant,
                                  "shared-memory access out of range")
                       .at_cycle(now).on_sm(sm_id_).on_warp(warp)
                       .at_pc(wc.stack.pc()));
    return tb.smem[word];
  };

  switch (inst.op) {
    case Opcode::kLdg: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        reg(warp, lane, inst.dst) = gmem_load(lane_addrs_[lane]);
      }
      // fu_can_accept guarantees the LDST op slot is free at issue time, so
      // the coalescer writes its line list straight into it.
      const int count = coalesce_lines_into(
          lane_addrs_, active, config_.l1d.line_bytes, ldst_op_.lines);
      salt_lines(count);
      stats_.gmem_transactions += static_cast<std::uint64_t>(count);
      const std::uint32_t token = alloc_pending_load(warp, inst.dst, count);
      scoreboard_.reserve(warp, inst.dst);
      ldst_op_.valid = true;
      ldst_op_.warp = warp;
      ldst_op_.num_lines = count;
      ldst_op_.next = 0;
      ldst_op_.kind = MemReqKind::kRead;
      ldst_op_.token = token;
      ldst_op_.is_const = false;
      break;
    }
    case Opcode::kStg: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        gmem_store(lane_addrs_[lane], reg(warp, lane, inst.src1));
      }
      const int count = coalesce_lines_into(
          lane_addrs_, active, config_.l1d.line_bytes, ldst_op_.lines);
      salt_lines(count);
      stats_.gmem_transactions += static_cast<std::uint64_t>(count);
      ldst_op_.valid = true;
      ldst_op_.warp = warp;
      ldst_op_.num_lines = count;
      ldst_op_.next = 0;
      ldst_op_.kind = MemReqKind::kWrite;
      ldst_op_.token = kNoToken;
      ldst_op_.is_const = false;
      break;
    }
    case Opcode::kAtomGAdd: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        const RegValue old = gmem_atomic_add(lane_addrs_[lane],
                                             reg(warp, lane, inst.src1));
        if (inst.dst != kNoReg) reg(warp, lane, inst.dst) = old;
      }
      const int count = coalesce_lines_into(
          lane_addrs_, active, config_.l1d.line_bytes, ldst_op_.lines);
      salt_lines(count);
      stats_.gmem_transactions += static_cast<std::uint64_t>(count);
      std::uint32_t token = kNoToken;
      if (inst.dst != kNoReg) {
        token = alloc_pending_load(warp, inst.dst, count);
        scoreboard_.reserve(warp, inst.dst);
      }
      ldst_op_.valid = true;
      ldst_op_.warp = warp;
      ldst_op_.num_lines = count;
      ldst_op_.next = 0;
      ldst_op_.kind = MemReqKind::kAtomic;
      ldst_op_.token = token;
      ldst_op_.is_const = false;
      break;
    }
    case Opcode::kAtomGCas:
    case Opcode::kAtomGExch: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        const RegValue old =
            inst.op == Opcode::kAtomGCas
                ? gmem_atomic_cas(lane_addrs_[lane],
                                  reg(warp, lane, inst.src1),
                                  reg(warp, lane, inst.src2))
                : gmem_atomic_exch(lane_addrs_[lane],
                                   reg(warp, lane, inst.src1));
        if (inst.dst != kNoReg) reg(warp, lane, inst.dst) = old;
      }
      const int count = coalesce_lines_into(
          lane_addrs_, active, config_.l1d.line_bytes, ldst_op_.lines);
      salt_lines(count);
      stats_.gmem_transactions += static_cast<std::uint64_t>(count);
      std::uint32_t token = kNoToken;
      if (inst.dst != kNoReg) {
        token = alloc_pending_load(warp, inst.dst, count);
        scoreboard_.reserve(warp, inst.dst);
      }
      ldst_op_.valid = true;
      ldst_op_.warp = warp;
      ldst_op_.num_lines = count;
      ldst_op_.next = 0;
      ldst_op_.kind = MemReqKind::kAtomic;
      ldst_op_.token = token;
      ldst_op_.is_const = false;
      break;
    }
    case Opcode::kLds: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        reg(warp, lane, inst.dst) = smem_word(lane);
      }
      const int degree =
          smem_conflict_degree(lane_addrs_, active, config_.smem_banks);
      stats_.smem_conflict_extra_cycles +=
          static_cast<std::uint64_t>(degree - 1);
      ldst_busy_until_ = now + static_cast<Cycle>(degree);
      scoreboard_.reserve(warp, inst.dst);
      schedule_release(warp, inst.dst,
                       now + config_.smem_latency + degree - 1);
      break;
    }
    case Opcode::kSts: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        smem_word(lane) = reg(warp, lane, inst.src1);
      }
      const int degree =
          smem_conflict_degree(lane_addrs_, active, config_.smem_banks);
      stats_.smem_conflict_extra_cycles +=
          static_cast<std::uint64_t>(degree - 1);
      ldst_busy_until_ = now + static_cast<Cycle>(degree);
      break;
    }
    case Opcode::kAtomSAdd: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        RegValue& word = smem_word(lane);
        const RegValue old = word;
        word = static_cast<RegValue>(
            static_cast<std::uint64_t>(word) +
            static_cast<std::uint64_t>(reg(warp, lane, inst.src1)));
        if (inst.dst != kNoReg) reg(warp, lane, inst.dst) = old;
      }
      const int degree =
          smem_conflict_degree(lane_addrs_, active, config_.smem_banks);
      stats_.smem_conflict_extra_cycles +=
          static_cast<std::uint64_t>(degree - 1);
      ldst_busy_until_ = now + static_cast<Cycle>(degree);
      if (inst.dst != kNoReg) {
        scoreboard_.reserve(warp, inst.dst);
        schedule_release(warp, inst.dst,
                         now + config_.smem_latency + degree - 1);
      }
      break;
    }
    case Opcode::kAtomSCas: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        RegValue& word = smem_word(lane);
        const RegValue old = word;
        if (old == reg(warp, lane, inst.src1)) {
          word = reg(warp, lane, inst.src2);
        }
        if (inst.dst != kNoReg) reg(warp, lane, inst.dst) = old;
      }
      const int degree =
          smem_conflict_degree(lane_addrs_, active, config_.smem_banks);
      stats_.smem_conflict_extra_cycles +=
          static_cast<std::uint64_t>(degree - 1);
      ldst_busy_until_ = now + static_cast<Cycle>(degree);
      if (inst.dst != kNoReg) {
        scoreboard_.reserve(warp, inst.dst);
        schedule_release(warp, inst.dst,
                         now + config_.smem_latency + degree - 1);
      }
      break;
    }
    case Opcode::kLdc: {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if ((active & (1u << lane)) == 0) continue;
        reg(warp, lane, inst.dst) = gmem_load(lane_addrs_[lane]);
      }
      scoreboard_.reserve(warp, inst.dst);
      if (config_.const_cache_enabled) {
        const int count = coalesce_lines_into(
            lane_addrs_, active, config_.const_cache.line_bytes,
            ldst_op_.lines);
        salt_lines(count);
        stats_.const_transactions += static_cast<std::uint64_t>(count);
        const std::uint32_t token =
            alloc_pending_load(warp, inst.dst, count);
        ldst_op_.valid = true;
        ldst_op_.warp = warp;
        ldst_op_.num_lines = count;
        ldst_op_.next = 0;
        ldst_op_.kind = MemReqKind::kRead;
        ldst_op_.token = token;
        ldst_op_.is_const = true;
      } else {
        // Always-hit approximation: fixed latency, no tags.
        ldst_busy_until_ = now + 1;
        schedule_release(warp, inst.dst, now + config_.const_latency);
      }
      break;
    }
    default:
      PROSIM_CHECK_MSG(false, "non-memory opcode in execute_memory");
  }
  wc.stack.advance();
}

// ---------------------------------------------------------------------------
// Watchdog diagnosis
// ---------------------------------------------------------------------------

void SmCore::diagnose(Cycle now, std::vector<WarpBlockInfo>& warps,
                      SmHealth& health) const {
  for (int w = 0; w < used_warp_slots_; ++w) {
    const WarpCtx& wc = warps_[w];
    if (!wc.allocated || wc.finished || !tbs_[wc.tb_slot].active) continue;
    const TbCtx& tb = tbs_[wc.tb_slot];

    WarpBlockInfo info;
    info.sm_id = sm_id_;
    info.warp = w;
    info.ctaid = tb.ctaid;
    info.pc = wc.stack.empty() ? -1 : wc.stack.pc();
    info.warps_at_barrier = tb.warps_at_barrier;
    info.warps_live = tb.warps_live;
    info.issue_gap = now - last_issue_[static_cast<std::size_t>(w)];

    if (wc.at_barrier) {
      info.reason = WarpBlockReason::kBarrier;
      info.barrier_wait = now - wc.barrier_arrive;
    } else if (wc.ibuffer_ready > now) {
      info.reason = WarpBlockReason::kFetch;
    } else {
      const Instruction& inst =
          program_.code[static_cast<std::size_t>(wc.stack.pc())];
      if (!scoreboard_.available(w, inst)) {
        info.reason = WarpBlockReason::kScoreboard;
        info.pending_regs =
            scoreboard_.pending_mask(w) & Scoreboard::regs_of(inst);
      } else if (inst.info().is_exit && scoreboard_.pending_mask(w) != 0) {
        info.reason = WarpBlockReason::kDrain;
        info.pending_regs = scoreboard_.pending_mask(w);
      } else if (!fu_can_accept(inst, now)) {
        info.reason = WarpBlockReason::kFuBusy;
      } else {
        info.reason = WarpBlockReason::kRunnable;
      }
    }
    warps.push_back(info);
  }

  health.sm_id = sm_id_;
  health.resident_tbs = resident_tbs_;
  health.live_pending_loads = live_pending_loads_;
  health.l1_mshr_occupancy = l1_mshr_.occupancy();
  health.const_mshr_occupancy = const_mshr_.occupancy();
  health.ldst_busy = ldst_op_.valid || ldst_busy_until_ > now;
  health.issued = stats_.issued;
}

// ---------------------------------------------------------------------------
// Barriers / warp & TB completion
// ---------------------------------------------------------------------------

void SmCore::do_barrier(int warp, Cycle now) {
  WarpCtx& wc = warps_[warp];
  PROSIM_REQUIRE(wc.stack.depth() == 1,
                 SimError::make(ErrorCategory::kBarrierMismatch,
                                "barrier executed inside a divergent region")
                     .at_cycle(now).on_sm(sm_id_).on_warp(warp)
                     .at_pc(wc.stack.pc()));
  wc.at_barrier = true;
  wc.barrier_arrive = now;
  live_mask_ &= ~(1ull << warp);
  TbCtx& tb = tbs_[wc.tb_slot];
  ++tb.warps_at_barrier;
  policy_->on_warp_barrier_arrive(warp, wc.tb_slot);
  if (tb.warps_at_barrier == tb.warps_live) release_barrier(wc.tb_slot, now);
}

void SmCore::release_barrier(int tb_slot, Cycle now) {
  TbCtx& tb = tbs_[tb_slot];
  for (int i = 0; i < warps_per_tb_; ++i) {
    const int w = tb_slot * warps_per_tb_ + i;
    WarpCtx& wc = warps_[w];
    if (wc.allocated && !wc.finished && wc.at_barrier) {
      wc.at_barrier = false;
      wc.ibuffer_ready = now + 1;
      live_mask_ |= 1ull << w;
      stats_.barrier_wait_cycles += now - wc.barrier_arrive;
    }
  }
  tb.warps_at_barrier = 0;
  ++stats_.barrier_releases;
  policy_->on_barrier_release(tb_slot);
}

void SmCore::do_exit(int warp, ActiveMask active, Cycle now) {
  WarpCtx& wc = warps_[warp];
  wc.stack.exit_lanes(active);
  if (wc.stack.empty()) finish_warp(warp, now);
}

void SmCore::finish_warp(int warp, Cycle now) {
  WarpCtx& wc = warps_[warp];
  wc.finished = true;
  wc.finish_cycle = now;
  live_mask_ &= ~(1ull << warp);
  TbCtx& tb = tbs_[wc.tb_slot];
  --tb.warps_live;
  policy_->on_warp_finish(warp, wc.tb_slot);
  if (tb.warps_live == 0) {
    retire_tb(wc.tb_slot, now);
  } else if (tb.warps_at_barrier > 0 &&
             tb.warps_at_barrier == tb.warps_live) {
    // The finished warp was the last one the barrier was waiting on.
    release_barrier(wc.tb_slot, now);
  }
}

}  // namespace prosim
