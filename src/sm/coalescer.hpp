// Global-memory access coalescer and shared-memory bank-conflict model.
//
// Coalescing: the per-lane byte addresses of one warp memory instruction
// are folded into the minimal set of cache-line (128B) transactions, in
// ascending order — lanes touching the same line share one transaction.
//
// Bank conflicts: shared memory has `banks` banks of 8-byte words; lanes
// hitting distinct words in the same bank serialize, lanes hitting the
// same word broadcast. The conflict degree (max distinct words on one
// bank) is the number of cycles the access occupies the LDST unit.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace prosim {

/// Distinct line addresses covered by the active lanes, ascending, written
/// into `out` (capacity >= kWarpSize — a warp can touch at most kWarpSize
/// distinct lines). Returns the line count. `addrs[i]` is only meaningful
/// when bit i of `active` is set. Allocation-free hot-path variant.
int coalesce_lines_into(const Addr* addrs, ActiveMask active, int line_bytes,
                        Addr* out);

/// Convenience wrapper returning a fresh vector (tests / cold paths).
std::vector<Addr> coalesce_lines(const Addr* addrs, ActiveMask active,
                                 int line_bytes);

/// Shared-memory conflict degree (>=1 when any lane is active, 0 when no
/// lane is active).
int smem_conflict_degree(const Addr* addrs, ActiveMask active, int banks);

}  // namespace prosim
