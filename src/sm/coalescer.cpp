#include "sm/coalescer.hpp"

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"

namespace prosim {

int coalesce_lines_into(const Addr* addrs, ActiveMask active, int line_bytes,
                        Addr* out) {
  PROSIM_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0);
  int count = 0;
  const Addr mask = ~static_cast<Addr>(line_bytes - 1);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    const Addr line = addrs[lane] & mask;
    bool seen = false;
    for (int i = 0; i < count; ++i) {
      if (out[i] == line) {
        seen = true;
        break;
      }
    }
    if (!seen) out[count++] = line;
  }
  std::sort(out, out + count);
  return count;
}

std::vector<Addr> coalesce_lines(const Addr* addrs, ActiveMask active,
                                 int line_bytes) {
  Addr scratch[kWarpSize];
  const int count = coalesce_lines_into(addrs, active, line_bytes, scratch);
  return std::vector<Addr>(scratch, scratch + count);
}

int smem_conflict_degree(const Addr* addrs, ActiveMask active, int banks) {
  PROSIM_CHECK(banks > 0);
  if (active == 0) return 0;
  // A warp has at most kWarpSize distinct words; dedup against a flat
  // fixed array (a word maps to exactly one bank, so global dedup equals
  // the per-bank dedup), then count occupancy per bank. No allocations.
  Addr words[kWarpSize];
  int num_words = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    const Addr word = addrs[lane] >> 3;
    bool seen = false;
    for (int i = 0; i < num_words; ++i) {
      if (words[i] == word) {
        seen = true;
        break;
      }
    }
    if (!seen) words[num_words++] = word;
  }
  if (num_words == 1) return 1;
  const bool pow2 = (banks & (banks - 1)) == 0;
  Addr bank_of[kWarpSize];
  for (int i = 0; i < num_words; ++i) {
    bank_of[i] = pow2 ? (words[i] & static_cast<Addr>(banks - 1))
                      : (words[i] % static_cast<Addr>(banks));
  }
  // Count occupancy per bank. Small bank counts (every real config) use a
  // direct counting array; the quadratic fallback covers arbitrary counts.
  int degree = 1;
  if (banks <= 64) {
    std::uint8_t counts[64] = {};
    for (int i = 0; i < num_words; ++i) {
      const int c = ++counts[bank_of[i]];
      degree = std::max(degree, c);
    }
  } else {
    for (int i = 0; i < num_words; ++i) {
      int same = 1;
      for (int j = 0; j < i; ++j) {
        if (bank_of[j] == bank_of[i]) ++same;
      }
      degree = std::max(degree, same);
    }
  }
  return degree;
}

}  // namespace prosim
