#include "sm/coalescer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prosim {

std::vector<Addr> coalesce_lines(const Addr* addrs, ActiveMask active,
                                 int line_bytes) {
  PROSIM_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0);
  std::vector<Addr> lines;
  lines.reserve(8);
  const Addr mask = ~static_cast<Addr>(line_bytes - 1);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    const Addr line = addrs[lane] & mask;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

int smem_conflict_degree(const Addr* addrs, ActiveMask active, int banks) {
  PROSIM_CHECK(banks > 0);
  if (active == 0) return 0;
  // words[b] collects the distinct 8-byte word indices observed on bank b.
  // Warp size is 32, so linear scans of tiny vectors beat hashing here.
  std::vector<std::vector<Addr>> words(static_cast<std::size_t>(banks));
  int degree = 1;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active & (1u << lane)) == 0) continue;
    const Addr word = addrs[lane] >> 3;
    auto& bank = words[static_cast<std::size_t>(word % banks)];
    if (std::find(bank.begin(), bank.end(), word) == bank.end()) {
      bank.push_back(word);
      degree = std::max(degree, static_cast<int>(bank.size()));
    }
  }
  return degree;
}

}  // namespace prosim
