// The streaming-multiprocessor timing model.
//
// Per cycle (in order): memory responses are drained into the L1 /
// pending-load bookkeeping, writeback events release scoreboard entries,
// the LDST unit dispatches coalesced transactions, and each hardware warp
// scheduler classifies its warps and (via the attached SchedulerPolicy)
// issues at most one instruction.
//
// Functional execution happens at issue time against the shared
// GlobalMemory / register files; the scoreboard guarantees dependents
// cannot issue before the modelled writeback, so functional state is always
// consistent with a real in-order SIMT pipeline (see DESIGN.md).
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/sim_error.hpp"
#include "common/types.hpp"
#include "faults/fault_injector.hpp"
#include "isa/program.hpp"
#include "mem/cache.hpp"
#include "mem/global_memory.hpp"
#include "mem/memory_subsystem.hpp"
#include "mem/mshr.hpp"
#include "sm/scheduler_policy.hpp"
#include "sm/scoreboard.hpp"
#include "sm/simt_stack.hpp"
#include "sm/sm_config.hpp"
#include "trace/trace_events.hpp"

namespace prosim {

/// GPGPU-Sim's stall taxonomy, counted per hardware scheduler per cycle.
struct SmStats {
  std::uint64_t issued = 0;
  std::uint64_t idle_stalls = 0;
  std::uint64_t scoreboard_stalls = 0;
  std::uint64_t pipeline_stalls = 0;
  std::uint64_t sched_cycles = 0;      ///< scheduler-cycles observed
  std::uint64_t thread_insts = 0;      ///< instructions weighted by lanes
  std::uint64_t warp_insts = 0;        ///< warp instructions issued
  std::uint64_t tbs_executed = 0;
  std::uint64_t smem_conflict_extra_cycles = 0;
  std::uint64_t gmem_transactions = 0;
  std::uint64_t const_transactions = 0;
  std::uint64_t barrier_releases = 0;
  /// Warp-cycles spent waiting at barriers (the §II-B barrierWait cost).
  std::uint64_t barrier_wait_cycles = 0;
  /// Sum over retired TBs of (last warp finish - first warp finish): the
  /// warp-level divergence the paper's §II-B characterizes.
  std::uint64_t warp_finish_disparity_sum = 0;
  /// Sum over cycles of resident TBs (mean occupancy = sum / cycles):
  /// the §II-C hardware-utilization signal.
  std::uint64_t occupancy_tb_cycles = 0;

  /// SIMT lanes utilized per issued warp instruction, in [0, 1].
  double simt_efficiency() const {
    return warp_insts == 0 ? 0.0
                           : static_cast<double>(thread_insts) /
                                 (32.0 * static_cast<double>(warp_insts));
  }
};

struct TbTimelineEntry {
  int ctaid = -1;
  Cycle start = 0;
  Cycle end = 0;
};

/// Architectural snapshot of one resident TB, taken at a yield point
/// (preemptive admission, docs/SERVING.md): SIMT stacks, registers, shared
/// memory, and progress counters — everything needed to re-launch the TB
/// later, on any SM bound to the same kernel, with identical semantics.
/// Checkpoints are only taken once the TB is quiescent (yield_quiescent),
/// so no in-flight loads, writebacks, or LDST transactions belong to it.
struct TbCheckpoint {
  int ctaid = -1;
  std::uint64_t tb_progress = 0;
  std::vector<RegValue> smem;
  struct WarpCkpt {
    SimtStack stack;
    bool finished = false;
    bool at_barrier = false;
    Cycle barrier_arrive = 0;
    Cycle finish_cycle = 0;
    std::uint64_t progress = 0;
  };
  std::vector<WarpCkpt> warps;  ///< one per warp of the TB, in slot order
  std::vector<RegValue> regs;   ///< flat [warp_in_tb][lane][reg] block
};

class SmCore {
 public:
  /// `tbs_waiting` reports whether the GPU-level thread-block scheduler
  /// still holds unassigned TBs (drives the policy's phase detection).
  SmCore(int sm_id, const SmConfig& config, const Program& program,
         GlobalMemory& gmem, MemorySubsystem& mem,
         std::unique_ptr<SchedulerPolicy> policy,
         std::function<bool()> tbs_waiting);

  SmCore(const SmCore&) = delete;
  SmCore& operator=(const SmCore&) = delete;

  /// Resident-TB limit for this kernel on this SM configuration.
  static int compute_residency(const SmConfig& config, const KernelInfo& info);

  int max_resident_tbs() const { return max_resident_tbs_; }
  bool can_accept_tb() const;
  void launch_tb(int ctaid, Cycle now);

  // -- preemptive yield/resume (preemptive_slo admission; docs/SERVING.md) --
  /// True when every resident TB is spin-stuck: each of its warps has
  /// finished, is parked at a barrier, or sits inside a statically detected
  /// spin-wait loop. Such an SM makes no forward progress on its own — the
  /// GPU yields a TB to break the cycle (Cooperative Kernels).
  bool all_resident_spin_stuck() const;
  /// Slot of the earliest-launched resident TB (the canonical yield
  /// victim), or -1 when none is resident.
  int oldest_tb_slot() const;
  /// Marks TB `tb_slot` for yielding: its warps stop issuing immediately
  /// (removed from every scheduler's candidate set) while in-flight loads
  /// and writebacks drain. One yield may be pending per SM.
  void request_yield(int tb_slot);
  /// Slot of the pending yield, or -1 when none is pending.
  int yield_pending() const { return pending_yield_slot_; }
  /// True when the pending yield victim has fully drained: no LDST
  /// operation and no scoreboard-pending register (so no writeback or
  /// in-flight load) belongs to any of its warps.
  bool yield_quiescent() const;
  /// Checkpoints and evicts the (quiescent) pending-yield TB, freeing its
  /// slot. Closes the TB's timeline span but does not count it executed.
  TbCheckpoint take_yield_checkpoint(Cycle now);
  /// Re-launches a checkpointed TB into a free slot, restoring stacks,
  /// registers, shared memory, and progress counters. The TB gets a fresh
  /// launch_seq (it is the newest resident), like a hardware re-dispatch.
  void resume_tb(const TbCheckpoint& ckpt, Cycle now);

  /// Advances one cycle. Returns true when the cycle did any work (drained
  /// a response, retired a writeback, dispatched LDST transactions, or
  /// issued an instruction) — false means the cycle was pure bookkeeping
  /// and the GPU may fast-forward past identical cycles (see skip_cycles).
  /// Equivalent to cycle_local() followed by cycle_rest().
  bool cycle(Cycle now);

  /// First half of cycle(): drains this SM's memory responses and
  /// writebacks. Strictly SM-local (own response queue, own caches/MSHRs),
  /// so the parallel step runs it for every SM before planning inject
  /// admission — the L1/MSHR state that classifies the cycle's pending
  /// lines is settled once this returns.
  bool cycle_local(Cycle now);
  /// Second half of cycle(): LDST dispatch and instruction issue. OR the
  /// return value with cycle_local()'s for the full cycle's activity.
  bool cycle_rest(Cycle now);

  /// Bulk-applies `count` quiet cycles' worth of per-cycle-constant stat
  /// increments (occupancy, scheduler cycles, the stall classification
  /// recorded by the last executed cycle). Only legal immediately after a
  /// cycle() that returned false, for a span in which next_event() proves
  /// no state transition can occur.
  void skip_cycles(Cycle count);

  /// Lower bound (> now) on the next cycle at which this SM could do any
  /// work: head writeback retiring, a warp's instruction buffer refilling,
  /// SFU/LDST units freeing up, or the policy's next time-triggered action.
  /// Memory responses are accounted by MemorySubsystem::next_event.
  /// kNoCycle when nothing is pending locally.
  Cycle next_event(Cycle now) const;

  int resident_tbs() const { return resident_tbs_; }
  /// True when no TB is resident and no memory/writeback event is pending.
  bool drained() const;

  // -- sampling accessors (metrics/; cold path, read-only) ------------------
  /// Warps currently eligible for the issue scan: allocated, unfinished,
  /// not parked at a barrier, and not draining toward a yield.
  int runnable_warps() const {
    return std::popcount(live_mask_ & ~yield_mask_);
  }
  /// Outstanding L1 miss lines (MSHR entries in flight).
  int l1_mshr_occupancy() const { return l1_mshr_.occupancy(); }
  /// ctaid of the TB resident in `tb_slot`, or -1 when the slot is free.
  int resident_ctaid(int tb_slot) const {
    return tb_ctaid_[static_cast<std::size_t>(tb_slot)];
  }
  /// Appends the PRO progress counter of every allocated, unfinished warp
  /// (the progress-spread input of the paper's §III signal).
  void sample_progress(std::vector<std::uint64_t>& out) const {
    for (int w = 0; w < used_warp_slots_; ++w) {
      const WarpCtx& ctx = warps_[static_cast<std::size_t>(w)];
      if (ctx.allocated && !ctx.finished) {
        out.push_back(warp_progress_[static_cast<std::size_t>(w)]);
      }
    }
  }

  const SmStats& stats() const { return stats_; }
  const Cache& l1() const { return l1_; }
  const Cache& const_cache() const { return const_cache_; }
  const std::vector<TbTimelineEntry>& timeline() const { return timeline_; }
  SchedulerPolicy& policy() { return *policy_; }
  const SchedulerPolicy& policy() const { return *policy_; }

  /// Optional destination for final per-thread registers, laid out
  /// [ctaid][tid][reg] over the whole grid; set by tests.
  void set_register_dump(RegValue* base) { register_dump_ = base; }

  /// Optional timing-fault injector (owned by the Gpu); nullptr = no
  /// faults. Consulted on the L1/const MSHR allocation path.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  /// Constant added to every coalesced line address on the *timing* path
  /// (L1/L2/DRAM), giving each co-resident kernel a distinct physical
  /// address space so tenants contend for cache capacity instead of
  /// falsely sharing lines. Functional accesses use the raw per-lane
  /// addresses and are unaffected. Zero (the default, and always the value
  /// for kernel 0) is a strict no-op.
  void set_addr_salt(Addr salt) { addr_salt_ = salt; }

  /// Attaches an observability sink (nullptr detaches). Strictly
  /// observational: simulation results are bit-identical with tracing on
  /// or off, and with no sink attached the instrumentation reduces to a
  /// null-pointer test per issue branch. Attach before the first cycle.
  void set_trace_sink(TraceSink* trace);

  /// Closes all open warp-state slices at simulation end (cycle `end` is
  /// exclusive), so per-state durations account every executed cycle.
  void trace_finalize(Cycle end);

  /// Appends a WarpBlockInfo for every allocated, unfinished warp (why it
  /// cannot issue right now) and fills this SM's memory-side health
  /// snapshot. Used by the forward-progress watchdog; not on the hot path.
  void diagnose(Cycle now, std::vector<WarpBlockInfo>& warps,
                SmHealth& health) const;

  // -- parallel staging (epoch-sharded simulation; see docs/PERF.md) --------
  /// Enters staged mode for one cycle: shared-state traffic (functional
  /// global-memory stores/atomics and timing-path interconnect injects) is
  /// buffered locally instead of published, so SM shards can run cycle()
  /// concurrently. Loads from global memory first consult this cycle's own
  /// store log (read-your-writes, as in the sequential interleaving); reads
  /// that fall through to the shared image are recorded for cross-SM
  /// conflict detection. `granted_injects` is this SM's admission grant
  /// from plan_inject_admission: the number of interconnect injects the
  /// sequential interleaving would admit this cycle. Staged dispatch
  /// consumes the grant instead of consulting live queue occupancy.
  void begin_staged_cycle(int granted_injects);
  /// Leaves staged mode and publishes the buffered traffic: interconnect
  /// injects in staged order, then the store log into global memory. Must
  /// be called serially, in ascending sm_id order — that reproduces the
  /// sequential loop's per-SM publication order bit-exactly.
  void commit_staged_cycle(Cycle now);
  /// Drops the buffers without publishing (conflict path).
  void discard_staged_cycle() { staged_ = false; }
  /// Replays this cycle's LDST dispatch loop without mutating anything,
  /// computing exactly how many interconnect injects the sequential
  /// interleaving would admit: lines classify as L1/const hit, MSHR merge,
  /// or inject against the post-drain cache state (call after
  /// cycle_local()), and each inject consumes one entry of
  /// `free_by_partition` (indexed by Interconnect::partition_of). Stops at
  /// the first rejection — exhausted port or MSHR — exactly where
  /// ldst_cycle stops dispatching. The Gpu calls this per SM in ascending
  /// sm_id order over one shared free-slot array, reproducing the
  /// sequential loop's first-come slot allocation bit-exactly.
  int plan_inject_admission(int* free_by_partition) const;
  const std::vector<Addr>& staged_base_reads() const {
    return staged_base_reads_;
  }
  const std::vector<std::pair<Addr, RegValue>>& staged_stores() const {
    return staged_stores_;
  }
  /// Identity of the functional memory this SM executes against; conflict
  /// detection only compares logs of SMs bound to the same image.
  const GlobalMemory* gmem_image() const { return &gmem_; }

 private:
  struct WarpCtx {
    SimtStack stack;
    bool allocated = false;
    bool finished = false;
    bool at_barrier = false;
    /// False until the warp issues its first instruction after its TB was
    /// launched or resumed. A warp with no issues since (re)launch is never
    /// spin-stuck evidence: the static in-spin PC classification only
    /// proves a livelock once the warp has actually executed under the
    /// current memory state. This also guarantees every demotion round
    /// lets the victim retire at least one instruction — the preemptive
    /// yield rotation can therefore never itself livelock.
    bool issued_since_launch = false;
    Cycle ibuffer_ready = 0;
    Cycle barrier_arrive = 0;  // when at_barrier was set (stats)
    Cycle finish_cycle = 0;    // when the warp retired (stats)
    int tb_slot = -1;
  };

  struct TbCtx {
    bool active = false;
    int ctaid = -1;
    std::uint64_t launch_seq = 0;
    int warps_live = 0;
    int warps_at_barrier = 0;
    Cycle start_cycle = 0;
    std::vector<RegValue> smem;
  };

  /// In-flight load instruction bookkeeping (one per issued load).
  struct PendingLoad {
    int warp = -1;
    std::uint8_t dst = kNoReg;
    int outstanding = 0;
    bool valid = false;
  };

  /// Current LDST-unit operation: remaining global transactions. A warp
  /// touches at most kWarpSize distinct lines, so the line list is a fixed
  /// in-place array — no per-instruction heap allocation.
  struct MemOp {
    bool valid = false;
    int warp = -1;
    Addr lines[kWarpSize];
    int num_lines = 0;
    int next = 0;
    MemReqKind kind = MemReqKind::kRead;
    std::uint32_t token = kNoToken;
    bool is_const = false;  // route through the constant cache
  };

  enum class WbKind : std::uint8_t { kRegRelease, kLoadComplete };
  struct WbEvent {
    Cycle at;
    WbKind kind;
    int warp;
    std::uint8_t reg;
    std::uint32_t token;
    bool operator>(const WbEvent& other) const { return at > other.at; }
  };

  static constexpr std::uint32_t kNoToken = 0xFFFFFFFFu;

  /// Per-instruction static properties needed by the issue scan, packed
  /// into one flat table indexed by pc. Precomputed at construction so the
  /// per-candidate hot loop never touches Instruction or OpcodeInfo.
  struct InstMeta {
    std::uint64_t regs = 0;  // scoreboard mask (Scoreboard::regs_of)
    FuType fu = FuType::kSpInt;
    bool is_exit = false;
    bool in_spin = false;  // pc lies inside a detected spin-wait loop
  };

  /// What a hardware scheduler did in the last executed cycle; multiplied
  /// out by skip_cycles (a quiet span repeats the same classification —
  /// every input to the classification is provably constant until the next
  /// event).
  enum class StallKind : std::uint8_t { kIdle, kScoreboard, kPipeline };

  // -- cycle phases (each returns "did any work") ---------------------------
  bool drain_responses(Cycle now);
  bool drain_writebacks(Cycle now);
  void ldst_cycle(Cycle now);
  bool issue_cycle(Cycle now);

  // -- issue helpers --------------------------------------------------------
  bool fu_can_accept(const Instruction& inst, Cycle now) const;
  void issue_warp(int warp, const Instruction& inst, Cycle now);
  void execute_alu(int warp, const Instruction& inst, ActiveMask active);
  void execute_memory(int warp, const Instruction& inst, ActiveMask active,
                      Cycle now);
  void execute_branch(int warp, const Instruction& inst, ActiveMask active);
  void do_barrier(int warp, Cycle now);
  void do_exit(int warp, ActiveMask active, Cycle now);
  void release_barrier(int tb_slot, Cycle now);
  void finish_warp(int warp, Cycle now);
  void retire_tb(int tb_slot, Cycle now);

  // -- tracing helpers (called only with a sink attached) -------------------
  /// Refines a scoreboard-classified scheduler cycle into mem vs alu
  /// (mem wins when any blocked candidate waits on an in-flight load).
  StallCause classify_scoreboard(int sched, Cycle now) const;
  /// Refines an idle-classified scheduler cycle (fetch > barrier > finish
  /// > throttled > no-warp precedence).
  StallCause classify_idle(int sched, Cycle now) const;
  /// True when any register in `regs` is reserved by an in-flight load.
  bool regs_mem_pending(int warp, std::uint64_t regs) const;
  /// Samples warp `warp`'s scheduling state at the end of cycle `now`.
  WarpState trace_state_of(int warp, Cycle now) const;
  /// Emits on_warp_state for every warp whose sampled state changed.
  void trace_warp_states(Cycle now);

  std::uint32_t alloc_pending_load(int warp, std::uint8_t dst,
                                   int outstanding);
  void complete_load_transaction(std::uint32_t token, Cycle now);
  void schedule_release(int warp, std::uint8_t reg, Cycle at);

  // -- staged-mode indirection for all shared-state traffic -----------------
  /// Sequential mode: live interconnect occupancy (mem_.can_inject).
  /// Staged mode: consumes one unit of this cycle's admission grant — the
  /// plan already proved which injects the sequential order would admit.
  bool can_inject_gated(Addr line);
  void inject_or_stage(Addr line, MemReqKind kind, std::uint32_t token,
                       bool is_const, Cycle now);
  RegValue staged_load(Addr addr);
  RegValue gmem_load(Addr addr);
  void gmem_store(Addr addr, RegValue value);
  RegValue gmem_atomic_add(Addr addr, RegValue delta);
  RegValue gmem_atomic_cas(Addr addr, RegValue expected, RegValue desired);
  RegValue gmem_atomic_exch(Addr addr, RegValue value);

  RegValue& reg(int warp, int lane, int r) {
    return regs_[(static_cast<std::size_t>(warp) * kWarpSize + lane) *
                     regs_per_thread_ +
                 r];
  }
  RegValue reg_or_zero(int warp, int lane, std::uint8_t r) const {
    return r == kNoReg
               ? 0
               : regs_[(static_cast<std::size_t>(warp) * kWarpSize + lane) *
                           regs_per_thread_ +
                       r];
  }
  int tb_of_warp(int warp) const { return warps_[warp].tb_slot; }
  int tid_of(int warp, int lane) const {
    const int warp_in_tb = warp - warps_[warp].tb_slot * warps_per_tb_;
    return warp_in_tb * kWarpSize + lane;
  }

  // -- immutable setup ------------------------------------------------------
  const int sm_id_;
  const SmConfig config_;
  const Program& program_;
  GlobalMemory& gmem_;
  MemorySubsystem& mem_;
  std::unique_ptr<SchedulerPolicy> policy_;
  std::function<bool()> tbs_waiting_;
  FaultInjector* faults_ = nullptr;

  int warps_per_tb_;
  int regs_per_thread_;
  int max_resident_tbs_;
  int used_warp_slots_;  // max_resident_tbs_ * warps_per_tb_
  std::vector<InstMeta> inst_meta_;  // indexed by pc

  // -- machine state ---------------------------------------------------------
  std::vector<WarpCtx> warps_;
  std::vector<TbCtx> tbs_;
  std::vector<RegValue> regs_;
  std::vector<std::uint64_t> warp_progress_;
  std::vector<Cycle> last_issue_;  // per warp slot; reset at TB launch
  std::vector<std::uint64_t> tb_progress_;
  std::vector<int> tb_ctaid_;
  std::vector<std::uint64_t> tb_launch_seq_;
  std::uint64_t next_launch_seq_ = 0;
  int resident_tbs_ = 0;

  /// Bit w set while warp w is allocated, unfinished, and not parked at a
  /// barrier — the candidate superset the issue stage scans. Maintained at
  /// launch/finish/barrier transitions so issue_cycle iterates set bits
  /// instead of probing all warp slots every cycle.
  std::uint64_t live_mask_ = 0;
  /// Bit w set while warp w belongs to a TB with a yield pending: excluded
  /// from issue so the TB drains to a checkpointable state. Zero except in
  /// the short window between request_yield and take_yield_checkpoint.
  std::uint64_t yield_mask_ = 0;
  int pending_yield_slot_ = -1;
  /// Bit w set when warp slot w belongs to hardware scheduler `sched`
  /// (w % num_schedulers == sched), w < used_warp_slots_.
  std::vector<std::uint64_t> sched_mask_;
  /// Per-scheduler stall classification of the last executed cycle.
  std::vector<StallKind> last_stall_;

  // -- tracing state (engaged only via set_trace_sink) ----------------------
  TraceSink* trace_ = nullptr;
  bool trace_warp_states_enabled_ = false;
  /// Fine-grained mirror of last_stall_, bulk-applied by skip_cycles.
  std::vector<StallCause> last_cause_;
  /// Last sampled state and its start cycle, per warp slot.
  std::vector<WarpState> warp_trace_state_;
  std::vector<Cycle> warp_state_since_;
  /// Bit w set while warp w issued in the current cycle (reset per cycle).
  std::uint64_t issued_now_mask_ = 0;

  Scoreboard scoreboard_;
  Cache l1_;
  Mshr<std::uint32_t> l1_mshr_;  // token = pending-load index
  Cache const_cache_;
  Mshr<std::uint32_t> const_mshr_;

  std::vector<PendingLoad> pending_loads_;
  std::vector<std::uint32_t> free_pending_loads_;
  int live_pending_loads_ = 0;

  std::priority_queue<WbEvent, std::vector<WbEvent>, std::greater<>> wb_;
  MemOp ldst_op_;
  Cycle ldst_busy_until_ = 0;
  Cycle sfu_ready_at_ = 0;

  // Scratch (per-issue) lane addresses.
  Addr lane_addrs_[kWarpSize] = {};

  /// Adds addr_salt_ to the first `count` coalesced lines in ldst_op_
  /// (no-op at salt 0; see set_addr_salt).
  void salt_lines(int count);
  Addr addr_salt_ = 0;

  // -- parallel staging state (engaged only via begin_staged_cycle) ---------
  bool staged_ = false;
  int staged_grants_ = 0;  ///< admitted injects left this staged cycle
  std::vector<MemRequest> staged_injects_;
  std::vector<std::pair<Addr, RegValue>> staged_stores_;
  std::vector<Addr> staged_base_reads_;
  /// Per-SM page cache for shared-image reads: the GlobalMemory-internal
  /// one mutates `mutable` members and would race across shards.
  GlobalMemory::PageLookup staged_lookup_;

  SmStats stats_;
  std::vector<TbTimelineEntry> timeline_;
  RegValue* register_dump_ = nullptr;
};

}  // namespace prosim
