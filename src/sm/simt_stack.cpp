#include "sm/simt_stack.hpp"

namespace prosim {

void SimtStack::reset(ActiveMask initial_mask) {
  stack_.clear();
  if (initial_mask != 0) stack_.push_back({0, -1, initial_mask});
}

void SimtStack::merge_pop() {
  while (!stack_.empty() && stack_.back().rpc >= 0 &&
         stack_.back().pc == stack_.back().rpc) {
    stack_.pop_back();
  }
}

void SimtStack::advance() {
  PROSIM_CHECK(!stack_.empty());
  ++stack_.back().pc;
  merge_pop();
}

void SimtStack::jump(std::int32_t target) {
  PROSIM_CHECK(!stack_.empty());
  stack_.back().pc = target;
  merge_pop();
}

void SimtStack::take_branch(const Instruction& inst, ActiveMask taken) {
  PROSIM_CHECK(!stack_.empty());
  Entry& top = stack_.back();
  const ActiveMask mask = top.mask;
  PROSIM_CHECK_MSG((taken & ~mask) == 0, "taken lanes outside active mask");
  const ActiveMask not_taken = mask & ~taken;

  if (taken == 0) {
    ++top.pc;
    merge_pop();
    return;
  }
  if (not_taken == 0) {
    top.pc = inst.target;
    merge_pop();
    return;
  }

  // Divergence: the current entry becomes the reconvergence placeholder;
  // not-taken is pushed first so the taken path executes first.
  PROSIM_CHECK_MSG(inst.reconv >= 0, "divergent branch without reconv pc");
  const std::int32_t fallthrough = top.pc + 1;
  top.pc = inst.reconv;
  stack_.push_back({fallthrough, inst.reconv, not_taken});
  stack_.push_back({inst.target, inst.reconv, taken});
  merge_pop();
}

void SimtStack::exit_lanes(ActiveMask lanes) {
  for (auto it = stack_.begin(); it != stack_.end();) {
    it->mask &= ~lanes;
    if (it->mask == 0) {
      it = stack_.erase(it);
    } else {
      ++it;
    }
  }
  // Exits can expose a parked reconvergence entry that is already at its
  // rpc (all diverged lanes gone); merge it away.
  merge_pop();
}

}  // namespace prosim
