// Warp-scheduler policy interface.
//
// One policy instance exists per SM (both hardware schedulers of the SM
// share it, exactly as PRO's per-SM TB state requires). Each cycle the SM
// computes, per hardware scheduler, the set of warps that could issue right
// now (i-buffer valid, not at barrier, scoreboard clear, functional unit
// free) and asks the policy to pick one.
//
// Policies observe the events the paper's Algorithm 1 consumes
// (insertBarrierWarp / insertFinishWarp / issue / TB launch+finish) through
// the on_* hooks, and read progress counters via PolicyContext.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace prosim {

class TraceSink;

/// Read-only view of SM state handed to the policy at attach time. Pointers
/// stay valid for the SM's lifetime and always reflect current state.
struct PolicyContext {
  int sm_id = 0;
  int num_warp_slots = 0;
  int num_tb_slots = 0;   // resident-TB slots actually usable for this kernel
  int warps_per_tb = 1;   // warp slots are blocked per TB: slot = tb*wpt + i
  int num_schedulers = 2;

  /// Instructions executed (weighted by active threads) per warp slot / TB
  /// slot — the paper's WarpProgress / TBProgress.
  const std::uint64_t* warp_progress = nullptr;
  const std::uint64_t* tb_progress = nullptr;

  /// Global TB index per slot (-1 when the slot is free).
  const int* tb_ctaid = nullptr;
  /// Monotonic launch sequence number per slot (age for GTO).
  const std::uint64_t* tb_launch_seq = nullptr;

  /// True while TBs are waiting in the GPU-level thread-block scheduler —
  /// the paper's TBsWaitingInThrdBlkSched(), i.e. fastTBPhase.
  std::function<bool()> tbs_waiting;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string name() const = 0;
  virtual void attach(const PolicyContext& ctx) = 0;

  /// Pick one warp from `ready_mask` (bit w = warp slot w is issuable for
  /// hardware scheduler `sched_id` this cycle). Never called with an empty
  /// mask; must return a set bit.
  virtual int pick(int sched_id, std::uint64_t ready_mask, Cycle now) = 0;

  /// Warps the policy wants the issue stage to consider at all this cycle.
  /// Warps outside the mask are invisible to both issue and stall
  /// classification — the Two-Level scheduler uses this to park its
  /// "pending" warps outside the active set.
  virtual std::uint64_t consider_mask(int /*sched_id*/) {
    return ~std::uint64_t{0};
  }

  /// Earliest future cycle at which the policy's begin_cycle would do
  /// something even without any warp event (threshold sorts, profiling
  /// epoch boundaries). Purely event-driven policies return kNoCycle. The
  /// GPU's fast-forward path never skips past this cycle, so time-triggered
  /// policy behaviour lands on exactly the same cycle as under per-cycle
  /// ticking.
  virtual Cycle next_wakeup(Cycle /*now*/) const { return kNoCycle; }

  /// Observability sink shared with the owning SM (nullptr = untraced).
  /// Policies emit policy-level events (e.g. PRO re-sorts) through it;
  /// sinks never feed back into scheduling decisions. Wrapper policies
  /// override to propagate the sink to their inner policy.
  virtual void set_trace(TraceSink* trace, int sm_id) {
    trace_ = trace;
    trace_sm_id_ = sm_id;
  }

  // ---- Event hooks (default: ignore) ------------------------------------
  virtual void begin_cycle(Cycle /*now*/) {}
  virtual void on_tb_launch(int /*tb_slot*/) {}
  virtual void on_tb_finish(int /*tb_slot*/) {}
  /// `long_latency` is true for global loads/atomics-with-result — the ops
  /// the Two-Level scheduler demotes on.
  virtual void on_warp_issue(int /*warp_slot*/, int /*active_threads*/,
                             bool /*long_latency*/) {}
  virtual void on_warp_barrier_arrive(int /*warp_slot*/, int /*tb_slot*/) {}
  virtual void on_barrier_release(int /*tb_slot*/) {}
  virtual void on_warp_finish(int /*warp_slot*/, int /*tb_slot*/) {}

 protected:
  TraceSink* trace_ = nullptr;
  int trace_sm_id_ = 0;
};

}  // namespace prosim
