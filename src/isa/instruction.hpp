// A single decoded instruction. Plain value type; programs are vectors of
// these and the PC is an index into that vector.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.hpp"

namespace prosim {

/// Register file is at most 64 registers per thread.
inline constexpr std::uint8_t kMaxRegs = 64;
/// Sentinel meaning "no register" (e.g. atomics that discard the old value).
inline constexpr std::uint8_t kNoReg = 0xFF;

struct Instruction {
  Opcode op = Opcode::kNop;

  std::uint8_t dst = kNoReg;
  std::uint8_t src0 = kNoReg;  // first source; address register for memory ops
  std::uint8_t src1 = kNoReg;  // second source / store value register
  std::uint8_t src2 = kNoReg;  // third source (imad/ffma/sel)

  /// When set, src1 is replaced by `imm` (valid for two-source ALU ops and
  /// setp). Memory ops always use `imm` as the byte offset added to src0.
  bool src1_is_imm = false;

  CmpOp cmp = CmpOp::kLt;         // for setp
  SpecialReg sreg = SpecialReg::kTid;  // for s2r

  std::int64_t imm = 0;  // immediate operand / memory byte offset

  // Control flow (bra only). Targets are instruction indices.
  std::int32_t target = -1;
  std::int32_t reconv = -1;      // immediate postdominator of the branch
  std::uint8_t pred = kNoReg;    // predicate register; kNoReg = unconditional
  bool pred_invert = false;      // taken when pred == 0 instead of != 0

  const OpcodeInfo& info() const { return opcode_info(op); }

  /// True if this instruction's issue can diverge a warp.
  bool is_divergent_branch() const {
    return op == Opcode::kBra && pred != kNoReg;
  }
};

/// Disassembles one instruction into the assembler's text syntax.
/// `labels_by_pc` is optional context used to print branch targets as labels
/// (pass nullptr to print raw PCs as @<pc>).
std::string disassemble(const Instruction& inst);

}  // namespace prosim
