// A Program is a kernel: metadata (launch geometry, resource usage) plus a
// flat instruction vector. The simulator and the reference interpreter both
// execute Programs directly; there is no separate encoding step.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace prosim {

struct KernelInfo {
  std::string name;
  int block_dim = 32;        ///< threads per thread block (1D)
  int grid_dim = 1;          ///< thread blocks in the grid (1D)
  int regs_per_thread = 16;  ///< architectural registers used per thread
  int smem_bytes = 0;        ///< shared memory per thread block
};

struct Program {
  KernelInfo info;
  std::vector<Instruction> code;

  int num_warps_per_tb() const {
    return (info.block_dim + kWarpSize - 1) / kWarpSize;
  }

  /// Validates static well-formedness; returns an empty string when valid,
  /// otherwise a description of the first problem found. Checks: non-empty
  /// code, code ends in exit or an unconditional branch, branch targets and
  /// reconvergence PCs in range, register indices within regs_per_thread,
  /// and resource limits (block_dim in [1,1024], regs <= kMaxRegs).
  std::string validate() const;

  /// Full textual disassembly (one instruction per line, PC-prefixed).
  std::string disassemble_all() const;
};

}  // namespace prosim
