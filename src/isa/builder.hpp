// Fluent authoring API for mini-ISA kernels.
//
// Structured control-flow helpers (if_begin/if_else/if_end, loop_begin/
// loop_end_if) emit branches with correct reconvergence PCs (the immediate
// postdominator), which is what the SIMT stack in the timing model relies
// on. Raw branches with explicit labels are also available for the
// assembler and for tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace prosim {

class ProgramBuilder {
 public:
  using Reg = std::uint8_t;

  struct Label {
    int id = -1;
  };

  explicit ProgramBuilder(std::string name);

  // ---- Kernel metadata -------------------------------------------------
  ProgramBuilder& block_dim(int threads);
  ProgramBuilder& grid_dim(int blocks);
  ProgramBuilder& regs(int regs_per_thread);
  ProgramBuilder& smem(int bytes);

  // ---- Straight-line instructions --------------------------------------
  ProgramBuilder& nop();
  ProgramBuilder& movi(Reg d, std::int64_t imm);
  ProgramBuilder& mov(Reg d, Reg a);
  ProgramBuilder& s2r(Reg d, SpecialReg sreg);

  ProgramBuilder& iadd(Reg d, Reg a, Reg b);
  ProgramBuilder& iaddi(Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& isub(Reg d, Reg a, Reg b);
  ProgramBuilder& isubi(Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& imul(Reg d, Reg a, Reg b);
  ProgramBuilder& imuli(Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& imad(Reg d, Reg a, Reg b, Reg c);
  ProgramBuilder& imin(Reg d, Reg a, Reg b);
  ProgramBuilder& imax(Reg d, Reg a, Reg b);
  ProgramBuilder& iand_(Reg d, Reg a, Reg b);
  ProgramBuilder& iandi(Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& ior_(Reg d, Reg a, Reg b);
  ProgramBuilder& ixor_(Reg d, Reg a, Reg b);
  ProgramBuilder& ixori(Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& ishl(Reg d, Reg a, Reg b);
  ProgramBuilder& ishli(Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& ishr(Reg d, Reg a, Reg b);
  ProgramBuilder& ishri(Reg d, Reg a, std::int64_t imm);

  ProgramBuilder& setp(CmpOp cmp, Reg d, Reg a, Reg b);
  ProgramBuilder& setpi(CmpOp cmp, Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& sel(Reg d, Reg a, Reg b, Reg p);

  ProgramBuilder& fadd(Reg d, Reg a, Reg b);
  ProgramBuilder& fmul(Reg d, Reg a, Reg b);
  ProgramBuilder& ffma(Reg d, Reg a, Reg b, Reg c);
  ProgramBuilder& fdiv(Reg d, Reg a, Reg b);
  ProgramBuilder& rsqrt(Reg d, Reg a);
  ProgramBuilder& fsin(Reg d, Reg a);
  ProgramBuilder& fexp(Reg d, Reg a);
  ProgramBuilder& flog(Reg d, Reg a);

  /// Global/shared/const memory; effective byte address = [addr_reg + off].
  ProgramBuilder& ldg(Reg d, Reg addr, std::int64_t off = 0);
  ProgramBuilder& stg(Reg addr, std::int64_t off, Reg value);
  ProgramBuilder& lds(Reg d, Reg addr, std::int64_t off = 0);
  ProgramBuilder& sts(Reg addr, std::int64_t off, Reg value);
  ProgramBuilder& ldc(Reg d, Reg addr, std::int64_t off = 0);
  ProgramBuilder& atomg_add(Reg addr, std::int64_t off, Reg value);
  ProgramBuilder& atoms_add(Reg addr, std::int64_t off, Reg value);
  /// Compare-and-swap / exchange. `d` receives the old value (pass kNoReg
  /// to discard it). CAS stores `value` only where the word equals `cmp`.
  ProgramBuilder& atomg_cas(Reg d, Reg addr, std::int64_t off, Reg cmp,
                            Reg value);
  ProgramBuilder& atomg_exch(Reg d, Reg addr, std::int64_t off, Reg value);
  ProgramBuilder& atoms_cas(Reg d, Reg addr, std::int64_t off, Reg cmp,
                            Reg value);

  ProgramBuilder& bar();
  ProgramBuilder& exit_();

  // ---- Labels and raw branches -----------------------------------------
  Label new_label();
  ProgramBuilder& bind(Label label);
  /// Unconditional branch (no divergence; no reconvergence PC needed).
  ProgramBuilder& jump(Label target);
  /// Conditional branch, taken when pred != 0 (or == 0 with invert).
  /// `reconv` must be the immediate postdominator.
  ProgramBuilder& bra(Reg pred, bool invert, Label target, Label reconv);

  // ---- Structured control flow ------------------------------------------
  /// Body runs for threads where pred != 0 (or == 0 with invert).
  ProgramBuilder& if_begin(Reg pred, bool invert = false);
  ProgramBuilder& if_else();
  ProgramBuilder& if_end();

  /// Binds and returns the loop-top label.
  Label loop_begin();
  /// Emits a backward branch to `top` taken while pred != 0 (or == 0 with
  /// invert); the fall-through is the reconvergence point.
  ProgramBuilder& loop_end_if(Reg pred, Label top, bool invert = false);

  /// Current emission PC (for tests / diagnostics).
  int here() const { return static_cast<int>(code_.size()); }

  /// Resolves labels, auto-sizes regs_per_thread to cover every register
  /// used (unless an explicit larger value was set), validates, and returns
  /// the program. Aborts on invalid programs — builder misuse is a bug in
  /// the caller, not a runtime condition.
  Program build();

 private:
  Instruction& emit(Opcode op);
  void note_reg(Reg r);
  ProgramBuilder& alu2(Opcode op, Reg d, Reg a, Reg b);
  ProgramBuilder& alu2i(Opcode op, Reg d, Reg a, std::int64_t imm);
  ProgramBuilder& alu1(Opcode op, Reg d, Reg a);

  struct Fixup {
    int pc;
    bool is_reconv;  // false = target field
    int label_id;
  };

  struct IfFrame {
    Label else_or_end;
    Label end;
    bool saw_else = false;
  };

  KernelInfo info_;
  std::vector<Instruction> code_;
  std::vector<int> label_pcs_;  // -1 = unbound
  std::vector<Fixup> fixups_;
  std::vector<IfFrame> if_stack_;
  int max_reg_used_ = -1;
  int explicit_regs_ = 0;
};

}  // namespace prosim
