#include "isa/opcode.hpp"

#include <array>

namespace prosim {

namespace {

constexpr std::size_t kNum = static_cast<std::size_t>(Opcode::kNumOpcodes);

constexpr std::array<std::string_view, 6> kCmpNames = {"lt", "le", "gt",
                                                       "ge", "eq", "ne"};

constexpr std::array<std::string_view, 7> kSregNames = {
    "tid", "ctaid", "ntid", "nctaid", "warpid", "laneid", "gtid"};

}  // namespace

std::string_view cmp_name(CmpOp cmp) {
  return kCmpNames[static_cast<std::size_t>(cmp)];
}

std::string_view sreg_name(SpecialReg sreg) {
  return kSregNames[static_cast<std::size_t>(sreg)];
}

Opcode parse_opcode(std::string_view mnemonic) {
  for (std::size_t i = 0; i < kNum; ++i) {
    if (detail::kOpcodeTable[i].mnemonic == mnemonic) {
      return static_cast<Opcode>(i);
    }
  }
  return Opcode::kNumOpcodes;
}

bool parse_cmp(std::string_view name, CmpOp& out) {
  for (std::size_t i = 0; i < kCmpNames.size(); ++i) {
    if (kCmpNames[i] == name) {
      out = static_cast<CmpOp>(i);
      return true;
    }
  }
  return false;
}

bool parse_sreg(std::string_view name, SpecialReg& out) {
  for (std::size_t i = 0; i < kSregNames.size(); ++i) {
    if (kSregNames[i] == name) {
      out = static_cast<SpecialReg>(i);
      return true;
    }
  }
  return false;
}

}  // namespace prosim
