#include "isa/opcode.hpp"

#include <array>

#include "common/check.hpp"

namespace prosim {

namespace {

constexpr std::size_t kNum = static_cast<std::size_t>(Opcode::kNumOpcodes);

// One row per opcode, indexed by the enum value.
// {mnemonic, fu, space, has_dst, num_srcs, branch, barrier, exit, atomic,
//  load, store}
constexpr std::array<OpcodeInfo, kNum> kTable = {{
    {"nop", FuType::kSpInt, MemSpace::kNone, false, 0, false, false, false,
     false, false, false},
    {"mov", FuType::kSpInt, MemSpace::kNone, true, 1, false, false, false,
     false, false, false},
    {"movi", FuType::kSpInt, MemSpace::kNone, true, 0, false, false, false,
     false, false, false},
    {"s2r", FuType::kSpInt, MemSpace::kNone, true, 0, false, false, false,
     false, false, false},
    {"iadd", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"isub", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"imul", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"imad", FuType::kSpInt, MemSpace::kNone, true, 3, false, false, false,
     false, false, false},
    {"imin", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"imax", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"iand", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"ior", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"ixor", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"ishl", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"ishr", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"setp", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"sel", FuType::kSpInt, MemSpace::kNone, true, 3, false, false, false,
     false, false, false},
    {"fadd", FuType::kSpFp, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"fmul", FuType::kSpFp, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"ffma", FuType::kSpFp, MemSpace::kNone, true, 3, false, false, false,
     false, false, false},
    {"fdiv", FuType::kSfu, MemSpace::kNone, true, 2, false, false, false,
     false, false, false},
    {"rsqrt", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
     false, false, false},
    {"fsin", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
     false, false, false},
    {"fexp", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
     false, false, false},
    {"flog", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
     false, false, false},
    {"ldg", FuType::kMem, MemSpace::kGlobal, true, 0, false, false, false,
     false, true, false},
    {"stg", FuType::kMem, MemSpace::kGlobal, false, 1, false, false, false,
     false, false, true},
    {"lds", FuType::kMem, MemSpace::kShared, true, 0, false, false, false,
     false, true, false},
    {"sts", FuType::kMem, MemSpace::kShared, false, 1, false, false, false,
     false, false, true},
    {"ldc", FuType::kMem, MemSpace::kConst, true, 0, false, false, false,
     false, true, false},
    {"atomg.add", FuType::kMem, MemSpace::kGlobal, false, 1, false, false,
     false, true, false, true},
    {"atoms.add", FuType::kMem, MemSpace::kShared, false, 1, false, false,
     false, true, false, true},
    {"bra", FuType::kControl, MemSpace::kNone, false, 0, true, false, false,
     false, false, false},
    {"bar", FuType::kControl, MemSpace::kNone, false, 0, false, true, false,
     false, false, false},
    {"exit", FuType::kControl, MemSpace::kNone, false, 0, false, false, true,
     false, false, false},
}};

constexpr std::array<std::string_view, 6> kCmpNames = {"lt", "le", "gt",
                                                       "ge", "eq", "ne"};

constexpr std::array<std::string_view, 7> kSregNames = {
    "tid", "ctaid", "ntid", "nctaid", "warpid", "laneid", "gtid"};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  PROSIM_CHECK(idx < kNum);
  return kTable[idx];
}

std::string_view cmp_name(CmpOp cmp) {
  return kCmpNames[static_cast<std::size_t>(cmp)];
}

std::string_view sreg_name(SpecialReg sreg) {
  return kSregNames[static_cast<std::size_t>(sreg)];
}

Opcode parse_opcode(std::string_view mnemonic) {
  for (std::size_t i = 0; i < kNum; ++i) {
    if (kTable[i].mnemonic == mnemonic) return static_cast<Opcode>(i);
  }
  return Opcode::kNumOpcodes;
}

bool parse_cmp(std::string_view name, CmpOp& out) {
  for (std::size_t i = 0; i < kCmpNames.size(); ++i) {
    if (kCmpNames[i] == name) {
      out = static_cast<CmpOp>(i);
      return true;
    }
  }
  return false;
}

bool parse_sreg(std::string_view name, SpecialReg& out) {
  for (std::size_t i = 0; i < kSregNames.size(); ++i) {
    if (kSregNames[i] == name) {
      out = static_cast<SpecialReg>(i);
      return true;
    }
  }
  return false;
}

}  // namespace prosim
