// Functional semantics of the mini ISA, shared by the scalar reference
// interpreter and the timing simulator so the two can never disagree.
//
// All arithmetic wraps (performed on uint64 and cast back) — no UB on
// overflow, and identical results everywhere. The "floating point" opcodes
// compute deterministic integer functions (see DESIGN.md).
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace prosim {

inline bool eval_cmp(CmpOp cmp, RegValue a, RegValue b) {
  switch (cmp) {
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
  }
  return false;
}

/// Geometry context needed to evaluate special registers.
struct ThreadGeom {
  int tid = 0;
  int ctaid = 0;
  int ntid = 1;
  int nctaid = 1;
};

inline RegValue eval_sreg(SpecialReg sreg, const ThreadGeom& g) {
  switch (sreg) {
    case SpecialReg::kTid: return g.tid;
    case SpecialReg::kCtaId: return g.ctaid;
    case SpecialReg::kNTid: return g.ntid;
    case SpecialReg::kNCtaId: return g.nctaid;
    case SpecialReg::kWarpId: return g.tid / kWarpSize;
    case SpecialReg::kLaneId: return g.tid % kWarpSize;
    case SpecialReg::kGlobalTid:
      return static_cast<RegValue>(g.ctaid) * g.ntid + g.tid;
  }
  return 0;
}

/// Computes an ALU/SFU opcode on already-fetched operand values.
/// `a` = src0, `b` = src1 (or immediate), `c` = src2. Not valid for memory,
/// control, mov/movi/s2r (those need external state).
inline RegValue eval_alu(const Instruction& inst, RegValue a, RegValue b,
                         RegValue c) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  const auto uc = static_cast<std::uint64_t>(c);
  switch (inst.op) {
    case Opcode::kIadd:
    case Opcode::kFadd:
      return static_cast<RegValue>(ua + ub);
    case Opcode::kIsub:
      return static_cast<RegValue>(ua - ub);
    case Opcode::kImul:
    case Opcode::kFmul:
      return static_cast<RegValue>(ua * ub);
    case Opcode::kImad:
    case Opcode::kFfma:
      return static_cast<RegValue>(ua * ub + uc);
    case Opcode::kImin:
      return a < b ? a : b;
    case Opcode::kImax:
      return a > b ? a : b;
    case Opcode::kIand:
      return static_cast<RegValue>(ua & ub);
    case Opcode::kIor:
      return static_cast<RegValue>(ua | ub);
    case Opcode::kIxor:
      return static_cast<RegValue>(ua ^ ub);
    case Opcode::kIshl:
      return static_cast<RegValue>(ua << (ub & 63));
    case Opcode::kIshr:
      return static_cast<RegValue>(ua >> (ub & 63));
    case Opcode::kSetp:
      return eval_cmp(inst.cmp, a, b) ? 1 : 0;
    case Opcode::kSel:
      return c != 0 ? a : b;
    case Opcode::kFdiv:
      return b == 0 ? 0 : a / b;
    case Opcode::kRsqrt: {
      // Integer sqrt of |a| — deterministic stand-in for 1/sqrt.
      std::uint64_t v = ua;
      if (a < 0) v = static_cast<std::uint64_t>(-a);
      std::uint64_t r = 0;
      std::uint64_t bit = 1ull << 62;
      while (bit > v) bit >>= 2;
      while (bit != 0) {
        if (v >= r + bit) {
          v -= r + bit;
          r = (r >> 1) + bit;
        } else {
          r >>= 1;
        }
        bit >>= 2;
      }
      return static_cast<RegValue>(r);
    }
    case Opcode::kFsin: {
      // SplitMix-style mix: a fixed deterministic scramble.
      std::uint64_t z = ua + 0x9E3779B97F4A7C15ull;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return static_cast<RegValue>(z ^ (z >> 31));
    }
    case Opcode::kFexp:
      return static_cast<RegValue>(ua * 3 + 1);
    case Opcode::kFlog:
      return static_cast<RegValue>((ua >> 1) ^ ua);
    default:
      PROSIM_CHECK_MSG(false, "eval_alu on non-ALU opcode");
      return 0;
  }
}

}  // namespace prosim
