#include "isa/builder.hpp"

#include "common/check.hpp"

namespace prosim {

ProgramBuilder::ProgramBuilder(std::string name) { info_.name = std::move(name); }

ProgramBuilder& ProgramBuilder::block_dim(int threads) {
  info_.block_dim = threads;
  return *this;
}

ProgramBuilder& ProgramBuilder::grid_dim(int blocks) {
  info_.grid_dim = blocks;
  return *this;
}

ProgramBuilder& ProgramBuilder::regs(int regs_per_thread) {
  explicit_regs_ = regs_per_thread;
  return *this;
}

ProgramBuilder& ProgramBuilder::smem(int bytes) {
  info_.smem_bytes = bytes;
  return *this;
}

Instruction& ProgramBuilder::emit(Opcode op) {
  code_.emplace_back();
  code_.back().op = op;
  return code_.back();
}

void ProgramBuilder::note_reg(Reg r) {
  if (r != kNoReg && r > max_reg_used_) max_reg_used_ = r;
}

ProgramBuilder& ProgramBuilder::alu2(Opcode op, Reg d, Reg a, Reg b) {
  Instruction& i = emit(op);
  i.dst = d;
  i.src0 = a;
  i.src1 = b;
  note_reg(d);
  note_reg(a);
  note_reg(b);
  return *this;
}

ProgramBuilder& ProgramBuilder::alu2i(Opcode op, Reg d, Reg a,
                                      std::int64_t imm) {
  Instruction& i = emit(op);
  i.dst = d;
  i.src0 = a;
  i.src1_is_imm = true;
  i.imm = imm;
  note_reg(d);
  note_reg(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::alu1(Opcode op, Reg d, Reg a) {
  Instruction& i = emit(op);
  i.dst = d;
  i.src0 = a;
  note_reg(d);
  note_reg(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() {
  emit(Opcode::kNop);
  return *this;
}

ProgramBuilder& ProgramBuilder::movi(Reg d, std::int64_t imm) {
  Instruction& i = emit(Opcode::kMovi);
  i.dst = d;
  i.imm = imm;
  note_reg(d);
  return *this;
}

ProgramBuilder& ProgramBuilder::mov(Reg d, Reg a) {
  return alu1(Opcode::kMov, d, a);
}

ProgramBuilder& ProgramBuilder::s2r(Reg d, SpecialReg sreg) {
  Instruction& i = emit(Opcode::kS2r);
  i.dst = d;
  i.sreg = sreg;
  note_reg(d);
  return *this;
}

ProgramBuilder& ProgramBuilder::iadd(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIadd, d, a, b);
}
ProgramBuilder& ProgramBuilder::iaddi(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kIadd, d, a, imm);
}
ProgramBuilder& ProgramBuilder::isub(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIsub, d, a, b);
}
ProgramBuilder& ProgramBuilder::isubi(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kIsub, d, a, imm);
}
ProgramBuilder& ProgramBuilder::imul(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kImul, d, a, b);
}
ProgramBuilder& ProgramBuilder::imuli(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kImul, d, a, imm);
}
ProgramBuilder& ProgramBuilder::imin(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kImin, d, a, b);
}
ProgramBuilder& ProgramBuilder::imax(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kImax, d, a, b);
}
ProgramBuilder& ProgramBuilder::iand_(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIand, d, a, b);
}
ProgramBuilder& ProgramBuilder::iandi(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kIand, d, a, imm);
}
ProgramBuilder& ProgramBuilder::ior_(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIor, d, a, b);
}
ProgramBuilder& ProgramBuilder::ixor_(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIxor, d, a, b);
}
ProgramBuilder& ProgramBuilder::ixori(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kIxor, d, a, imm);
}
ProgramBuilder& ProgramBuilder::ishl(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIshl, d, a, b);
}
ProgramBuilder& ProgramBuilder::ishli(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kIshl, d, a, imm);
}
ProgramBuilder& ProgramBuilder::ishr(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kIshr, d, a, b);
}
ProgramBuilder& ProgramBuilder::ishri(Reg d, Reg a, std::int64_t imm) {
  return alu2i(Opcode::kIshr, d, a, imm);
}

ProgramBuilder& ProgramBuilder::imad(Reg d, Reg a, Reg b, Reg c) {
  Instruction& i = emit(Opcode::kImad);
  i.dst = d;
  i.src0 = a;
  i.src1 = b;
  i.src2 = c;
  note_reg(d);
  note_reg(a);
  note_reg(b);
  note_reg(c);
  return *this;
}

ProgramBuilder& ProgramBuilder::setp(CmpOp cmp, Reg d, Reg a, Reg b) {
  alu2(Opcode::kSetp, d, a, b);
  code_.back().cmp = cmp;
  return *this;
}

ProgramBuilder& ProgramBuilder::setpi(CmpOp cmp, Reg d, Reg a,
                                      std::int64_t imm) {
  alu2i(Opcode::kSetp, d, a, imm);
  code_.back().cmp = cmp;
  return *this;
}

ProgramBuilder& ProgramBuilder::sel(Reg d, Reg a, Reg b, Reg p) {
  Instruction& i = emit(Opcode::kSel);
  i.dst = d;
  i.src0 = a;
  i.src1 = b;
  i.src2 = p;
  note_reg(d);
  note_reg(a);
  note_reg(b);
  note_reg(p);
  return *this;
}

ProgramBuilder& ProgramBuilder::fadd(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kFadd, d, a, b);
}
ProgramBuilder& ProgramBuilder::fmul(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kFmul, d, a, b);
}
ProgramBuilder& ProgramBuilder::ffma(Reg d, Reg a, Reg b, Reg c) {
  Instruction& i = emit(Opcode::kFfma);
  i.dst = d;
  i.src0 = a;
  i.src1 = b;
  i.src2 = c;
  note_reg(d);
  note_reg(a);
  note_reg(b);
  note_reg(c);
  return *this;
}
ProgramBuilder& ProgramBuilder::fdiv(Reg d, Reg a, Reg b) {
  return alu2(Opcode::kFdiv, d, a, b);
}
ProgramBuilder& ProgramBuilder::rsqrt(Reg d, Reg a) {
  return alu1(Opcode::kRsqrt, d, a);
}
ProgramBuilder& ProgramBuilder::fsin(Reg d, Reg a) {
  return alu1(Opcode::kFsin, d, a);
}
ProgramBuilder& ProgramBuilder::fexp(Reg d, Reg a) {
  return alu1(Opcode::kFexp, d, a);
}
ProgramBuilder& ProgramBuilder::flog(Reg d, Reg a) {
  return alu1(Opcode::kFlog, d, a);
}

ProgramBuilder& ProgramBuilder::ldg(Reg d, Reg addr, std::int64_t off) {
  Instruction& i = emit(Opcode::kLdg);
  i.dst = d;
  i.src0 = addr;
  i.imm = off;
  note_reg(d);
  note_reg(addr);
  return *this;
}

ProgramBuilder& ProgramBuilder::stg(Reg addr, std::int64_t off, Reg value) {
  Instruction& i = emit(Opcode::kStg);
  i.src0 = addr;
  i.src1 = value;
  i.imm = off;
  note_reg(addr);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::lds(Reg d, Reg addr, std::int64_t off) {
  Instruction& i = emit(Opcode::kLds);
  i.dst = d;
  i.src0 = addr;
  i.imm = off;
  note_reg(d);
  note_reg(addr);
  return *this;
}

ProgramBuilder& ProgramBuilder::sts(Reg addr, std::int64_t off, Reg value) {
  Instruction& i = emit(Opcode::kSts);
  i.src0 = addr;
  i.src1 = value;
  i.imm = off;
  note_reg(addr);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::ldc(Reg d, Reg addr, std::int64_t off) {
  Instruction& i = emit(Opcode::kLdc);
  i.dst = d;
  i.src0 = addr;
  i.imm = off;
  note_reg(d);
  note_reg(addr);
  return *this;
}

ProgramBuilder& ProgramBuilder::atomg_add(Reg addr, std::int64_t off,
                                          Reg value) {
  Instruction& i = emit(Opcode::kAtomGAdd);
  i.src0 = addr;
  i.src1 = value;
  i.imm = off;
  note_reg(addr);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::atoms_add(Reg addr, std::int64_t off,
                                          Reg value) {
  Instruction& i = emit(Opcode::kAtomSAdd);
  i.src0 = addr;
  i.src1 = value;
  i.imm = off;
  note_reg(addr);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::atomg_cas(Reg d, Reg addr, std::int64_t off,
                                          Reg cmp, Reg value) {
  Instruction& i = emit(Opcode::kAtomGCas);
  i.dst = d;
  i.src0 = addr;
  i.src1 = cmp;
  i.src2 = value;
  i.imm = off;
  note_reg(d);
  note_reg(addr);
  note_reg(cmp);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::atomg_exch(Reg d, Reg addr, std::int64_t off,
                                           Reg value) {
  Instruction& i = emit(Opcode::kAtomGExch);
  i.dst = d;
  i.src0 = addr;
  i.src1 = value;
  i.imm = off;
  note_reg(d);
  note_reg(addr);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::atoms_cas(Reg d, Reg addr, std::int64_t off,
                                          Reg cmp, Reg value) {
  Instruction& i = emit(Opcode::kAtomSCas);
  i.dst = d;
  i.src0 = addr;
  i.src1 = cmp;
  i.src2 = value;
  i.imm = off;
  note_reg(d);
  note_reg(addr);
  note_reg(cmp);
  note_reg(value);
  return *this;
}

ProgramBuilder& ProgramBuilder::bar() {
  emit(Opcode::kBar);
  return *this;
}

ProgramBuilder& ProgramBuilder::exit_() {
  emit(Opcode::kExit);
  return *this;
}

ProgramBuilder::Label ProgramBuilder::new_label() {
  Label l;
  l.id = static_cast<int>(label_pcs_.size());
  label_pcs_.push_back(-1);
  return l;
}

ProgramBuilder& ProgramBuilder::bind(Label label) {
  PROSIM_CHECK(label.id >= 0 &&
               label.id < static_cast<int>(label_pcs_.size()));
  PROSIM_CHECK_MSG(label_pcs_[label.id] == -1, "label bound twice");
  label_pcs_[label.id] = here();
  return *this;
}

ProgramBuilder& ProgramBuilder::jump(Label target) {
  Instruction& i = emit(Opcode::kBra);
  i.pred = kNoReg;
  fixups_.push_back({here() - 1, false, target.id});
  return *this;
}

ProgramBuilder& ProgramBuilder::bra(Reg pred, bool invert, Label target,
                                    Label reconv) {
  Instruction& i = emit(Opcode::kBra);
  i.pred = pred;
  i.pred_invert = invert;
  note_reg(pred);
  fixups_.push_back({here() - 1, false, target.id});
  fixups_.push_back({here() - 1, true, reconv.id});
  return *this;
}

ProgramBuilder& ProgramBuilder::if_begin(Reg pred, bool invert) {
  IfFrame frame;
  frame.else_or_end = new_label();
  frame.end = new_label();
  // Branch *around* the body when the condition is false.
  bra(pred, !invert, frame.else_or_end, frame.end);
  if_stack_.push_back(frame);
  return *this;
}

ProgramBuilder& ProgramBuilder::if_else() {
  PROSIM_CHECK_MSG(!if_stack_.empty(), "if_else without if_begin");
  IfFrame& frame = if_stack_.back();
  PROSIM_CHECK_MSG(!frame.saw_else, "double if_else");
  frame.saw_else = true;
  jump(frame.end);
  bind(frame.else_or_end);
  return *this;
}

ProgramBuilder& ProgramBuilder::if_end() {
  PROSIM_CHECK_MSG(!if_stack_.empty(), "if_end without if_begin");
  IfFrame frame = if_stack_.back();
  if_stack_.pop_back();
  if (!frame.saw_else) bind(frame.else_or_end);
  bind(frame.end);
  return *this;
}

ProgramBuilder::Label ProgramBuilder::loop_begin() {
  Label top = new_label();
  bind(top);
  return top;
}

ProgramBuilder& ProgramBuilder::loop_end_if(Reg pred, Label top, bool invert) {
  Label after = new_label();
  bra(pred, invert, top, after);
  bind(after);
  return *this;
}

Program ProgramBuilder::build() {
  PROSIM_CHECK_MSG(if_stack_.empty(), "unterminated if_begin");
  for (const Fixup& fixup : fixups_) {
    PROSIM_CHECK(fixup.label_id >= 0 &&
                 fixup.label_id < static_cast<int>(label_pcs_.size()));
    const int pc = label_pcs_[fixup.label_id];
    PROSIM_CHECK_MSG(pc >= 0, "unbound label referenced by branch");
    if (fixup.is_reconv) {
      code_[fixup.pc].reconv = pc;
    } else {
      code_[fixup.pc].target = pc;
    }
  }

  Program program;
  program.info = info_;
  program.info.regs_per_thread =
      std::max(explicit_regs_, max_reg_used_ + 1);
  if (program.info.regs_per_thread < 1) program.info.regs_per_thread = 1;
  program.code = std::move(code_);

  const std::string error = program.validate();
  PROSIM_CHECK_MSG(error.empty(), error.c_str());
  return program;
}

}  // namespace prosim
