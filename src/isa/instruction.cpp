#include "isa/instruction.hpp"

#include <string>

namespace prosim {

namespace {

std::string reg(std::uint8_t r) {
  return r == kNoReg ? std::string("r?") : "r" + std::to_string(r);
}

std::string mem_operand(const Instruction& inst) {
  std::string out = "[" + reg(inst.src0);
  if (inst.imm >= 0) {
    out += "+" + std::to_string(inst.imm);
  } else {
    out += std::to_string(inst.imm);
  }
  out += "]";
  return out;
}

std::string src1_or_imm(const Instruction& inst) {
  if (inst.src1_is_imm) return "#" + std::to_string(inst.imm);
  return reg(inst.src1);
}

}  // namespace

std::string disassemble(const Instruction& inst) {
  const OpcodeInfo& info = inst.info();
  std::string out;

  if (inst.op == Opcode::kBra && inst.pred != kNoReg) {
    out += "@";
    if (inst.pred_invert) out += "!";
    out += reg(inst.pred) + " ";
  }

  out += std::string(info.mnemonic);
  if (inst.op == Opcode::kSetp) out += "." + std::string(cmp_name(inst.cmp));

  switch (inst.op) {
    case Opcode::kNop:
    case Opcode::kBar:
    case Opcode::kExit:
      break;
    case Opcode::kMovi:
      out += " " + reg(inst.dst) + ", " + std::to_string(inst.imm);
      break;
    case Opcode::kMov:
      out += " " + reg(inst.dst) + ", " + reg(inst.src0);
      break;
    case Opcode::kS2r:
      out += " " + reg(inst.dst) + ", %" + std::string(sreg_name(inst.sreg));
      break;
    case Opcode::kRsqrt:
    case Opcode::kFsin:
    case Opcode::kFexp:
    case Opcode::kFlog:
      out += " " + reg(inst.dst) + ", " + reg(inst.src0);
      break;
    case Opcode::kImad:
    case Opcode::kFfma:
      out += " " + reg(inst.dst) + ", " + reg(inst.src0) + ", " +
             src1_or_imm(inst) + ", " + reg(inst.src2);
      break;
    case Opcode::kSel:
      out += " " + reg(inst.dst) + ", " + reg(inst.src0) + ", " +
             reg(inst.src1) + ", " + reg(inst.src2);
      break;
    case Opcode::kLdg:
    case Opcode::kLds:
    case Opcode::kLdc:
      out += " " + reg(inst.dst) + ", " + mem_operand(inst);
      break;
    case Opcode::kStg:
    case Opcode::kSts:
      out += " " + mem_operand(inst) + ", " + reg(inst.src1);
      break;
    case Opcode::kAtomGAdd:
    case Opcode::kAtomSAdd:
    case Opcode::kAtomGExch:
      if (inst.dst != kNoReg) {
        out += " " + reg(inst.dst) + ", " + mem_operand(inst) + ", " +
               reg(inst.src1);
      } else {
        out += " " + mem_operand(inst) + ", " + reg(inst.src1);
      }
      break;
    case Opcode::kAtomGCas:
    case Opcode::kAtomSCas:
      // atom.cas [dst,] [rA+off], rCmp, rNew
      if (inst.dst != kNoReg) out += " " + reg(inst.dst) + ",";
      out += " " + mem_operand(inst) + ", " + reg(inst.src1) + ", " +
             reg(inst.src2);
      break;
    case Opcode::kBra:
      out += " @" + std::to_string(inst.target);
      // Unconditional branches carry no reconvergence point.
      if (inst.reconv >= 0) out += " !@" + std::to_string(inst.reconv);
      break;
    default:
      // Two-source ALU ops.
      out += " " + reg(inst.dst) + ", " + reg(inst.src0) + ", " +
             src1_or_imm(inst);
      break;
  }
  return out;
}

}  // namespace prosim
