#include "isa/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace prosim {

namespace {

// ---- Lexing helpers --------------------------------------------------------

std::string strip_comment(const std::string& line) {
  std::string out;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ';') break;
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    out += line[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits an operand list on commas, trimming each piece.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty() || !out.empty()) out.push_back(last);
  return out;
}

bool parse_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

bool parse_reg(const std::string& s, std::uint8_t& out) {
  if (s.size() < 2 || s[0] != 'r') return false;
  std::int64_t v;
  if (!parse_int(s.substr(1), v)) return false;
  if (v < 0 || v >= kMaxRegs) return false;
  out = static_cast<std::uint8_t>(v);
  return true;
}

// A branch-target reference: either a label name or a raw @pc.
struct TargetRef {
  std::string label;  // empty when raw
  int raw_pc = -1;
};

bool parse_target(const std::string& s, TargetRef& out) {
  if (s.empty()) return false;
  if (s[0] == '@') {
    std::int64_t v;
    if (!parse_int(s.substr(1), v) || v < 0) return false;
    out.raw_pc = static_cast<int>(v);
    out.label.clear();
    return true;
  }
  out.label = s;
  out.raw_pc = -1;
  return true;
}

// ---- Per-instruction pending fixups ---------------------------------------

struct PendingBranch {
  int pc;
  int line;
  TargetRef target;
  bool has_reconv = false;
  TargetRef reconv;
};

struct ParseState {
  Program program;
  std::map<std::string, int> labels;
  std::vector<PendingBranch> branches;
  int max_reg_used = -1;
  bool explicit_regs = false;
};

void note_reg(ParseState& st, std::uint8_t r) {
  if (r != kNoReg && r > st.max_reg_used) st.max_reg_used = r;
}

std::optional<AssemblerError> err(int line, const std::string& message) {
  return AssemblerError{line, message};
}

// Parses "[rN+off]" or "[rN-off]" or "[rN]".
bool parse_mem(const std::string& s, std::uint8_t& addr_reg,
               std::int64_t& off) {
  if (s.size() < 4 || s.front() != '[' || s.back() != ']') return false;
  const std::string inner = s.substr(1, s.size() - 2);
  std::size_t sign = inner.find_first_of("+-", 1);
  std::string reg_part = inner;
  std::string off_part;
  if (sign != std::string::npos) {
    reg_part = inner.substr(0, sign);
    off_part = inner.substr(sign);  // keep sign character
  }
  if (!parse_reg(trim(reg_part), addr_reg)) return false;
  off = 0;
  if (!off_part.empty() && !parse_int(trim(off_part), off)) return false;
  return true;
}

/// Handles a ".directive value" line. Returns error or nullopt.
std::optional<AssemblerError> handle_directive(ParseState& st, int line_no,
                                               const std::string& line) {
  std::istringstream iss(line);
  std::string directive;
  iss >> directive;
  if (directive == ".kernel") {
    std::string name;
    iss >> name;
    if (name.empty()) return err(line_no, ".kernel requires a name");
    st.program.info.name = name;
    return std::nullopt;
  }
  std::int64_t value = 0;
  std::string value_str;
  iss >> value_str;
  if (!parse_int(value_str, value))
    return err(line_no, directive + " requires an integer argument");
  if (directive == ".blockdim") {
    st.program.info.block_dim = static_cast<int>(value);
  } else if (directive == ".grid") {
    st.program.info.grid_dim = static_cast<int>(value);
  } else if (directive == ".regs") {
    st.program.info.regs_per_thread = static_cast<int>(value);
    st.explicit_regs = true;
  } else if (directive == ".smem") {
    st.program.info.smem_bytes = static_cast<int>(value);
  } else {
    return err(line_no, "unknown directive " + directive);
  }
  return std::nullopt;
}

std::optional<AssemblerError> handle_instruction(ParseState& st, int line_no,
                                                 std::string text) {
  // Optional predicate prefix: "@rN " or "@!rN ".
  std::uint8_t pred = kNoReg;
  bool pred_invert = false;
  if (!text.empty() && text[0] == '@' && text.size() > 1 &&
      (text[1] == 'r' || text[1] == '!')) {
    std::size_t space = text.find(' ');
    if (space == std::string::npos)
      return err(line_no, "predicate prefix without instruction");
    std::string p = text.substr(1, space - 1);
    if (!p.empty() && p[0] == '!') {
      pred_invert = true;
      p = p.substr(1);
    }
    if (!parse_reg(p, pred))
      return err(line_no, "bad predicate register '" + p + "'");
    text = trim(text.substr(space + 1));
  }

  // Mnemonic (possibly with .suffix for setp/atom).
  std::size_t sp = text.find_first_of(" \t");
  std::string mnemonic = sp == std::string::npos ? text : text.substr(0, sp);
  std::string rest = sp == std::string::npos ? "" : trim(text.substr(sp + 1));

  CmpOp cmp = CmpOp::kLt;
  bool has_cmp = false;
  if (mnemonic.rfind("setp.", 0) == 0) {
    if (!parse_cmp(mnemonic.substr(5), cmp))
      return err(line_no, "bad comparison in '" + mnemonic + "'");
    has_cmp = true;
    mnemonic = "setp";
  }

  const Opcode op = parse_opcode(mnemonic);
  if (op == Opcode::kNumOpcodes)
    return err(line_no, "unknown mnemonic '" + mnemonic + "'");
  if (pred != kNoReg && op != Opcode::kBra)
    return err(line_no, "predicate prefix only valid on bra");

  Instruction inst;
  inst.op = op;
  inst.cmp = cmp;
  inst.pred = pred;
  inst.pred_invert = pred_invert;
  (void)has_cmp;

  const OpcodeInfo& info = opcode_info(op);
  std::vector<std::string> ops = split_operands(rest);
  if (ops.size() == 1 && ops[0].empty()) ops.clear();

  auto want = [&](std::size_t n) -> std::optional<AssemblerError> {
    if (ops.size() != n)
      return err(line_no, mnemonic + " expects " + std::to_string(n) +
                              " operands, got " + std::to_string(ops.size()));
    return std::nullopt;
  };
  auto reg_at = [&](std::size_t i, std::uint8_t& out)
      -> std::optional<AssemblerError> {
    if (!parse_reg(ops[i], out))
      return err(line_no, "expected register, got '" + ops[i] + "'");
    note_reg(st, out);
    return std::nullopt;
  };
  // Register or '#imm' in a src1 slot.
  auto reg_or_imm_at = [&](std::size_t i) -> std::optional<AssemblerError> {
    if (!ops[i].empty() && ops[i][0] == '#') {
      if (!parse_int(ops[i].substr(1), inst.imm))
        return err(line_no, "bad immediate '" + ops[i] + "'");
      inst.src1_is_imm = true;
      return std::nullopt;
    }
    if (auto e = reg_at(i, inst.src1)) return e;
    return std::nullopt;
  };
  auto mem_at = [&](std::size_t i) -> std::optional<AssemblerError> {
    if (!parse_mem(ops[i], inst.src0, inst.imm))
      return err(line_no, "bad memory operand '" + ops[i] + "'");
    note_reg(st, inst.src0);
    return std::nullopt;
  };

  switch (op) {
    case Opcode::kNop:
    case Opcode::kBar:
    case Opcode::kExit:
      if (auto e = want(0)) return e;
      break;

    case Opcode::kMovi: {
      if (auto e = want(2)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      // Accept both plain and '#'-prefixed immediates.
      std::string imm_text = ops[1];
      if (!imm_text.empty() && imm_text[0] == '#') imm_text = imm_text.substr(1);
      if (!parse_int(imm_text, inst.imm))
        return err(line_no, "bad immediate '" + ops[1] + "'");
      break;
    }

    case Opcode::kMov:
    case Opcode::kRsqrt:
    case Opcode::kFsin:
    case Opcode::kFexp:
    case Opcode::kFlog:
      if (auto e = want(2)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      if (auto e = reg_at(1, inst.src0)) return e;
      break;

    case Opcode::kS2r: {
      if (auto e = want(2)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      if (ops[1].empty() || ops[1][0] != '%')
        return err(line_no, "s2r expects %sreg, got '" + ops[1] + "'");
      if (!parse_sreg(ops[1].substr(1), inst.sreg))
        return err(line_no, "unknown special register '" + ops[1] + "'");
      break;
    }

    case Opcode::kImad:
    case Opcode::kFfma:
      if (auto e = want(4)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      if (auto e = reg_at(1, inst.src0)) return e;
      if (auto e = reg_or_imm_at(2)) return e;
      if (auto e = reg_at(3, inst.src2)) return e;
      break;

    case Opcode::kSel:
      if (auto e = want(4)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      if (auto e = reg_at(1, inst.src0)) return e;
      if (auto e = reg_at(2, inst.src1)) return e;
      if (auto e = reg_at(3, inst.src2)) return e;
      break;

    case Opcode::kLdg:
    case Opcode::kLds:
    case Opcode::kLdc:
      if (auto e = want(2)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      if (auto e = mem_at(1)) return e;
      break;

    case Opcode::kStg:
    case Opcode::kSts:
      if (auto e = want(2)) return e;
      if (auto e = mem_at(0)) return e;
      if (auto e = reg_at(1, inst.src1)) return e;
      break;

    case Opcode::kAtomGAdd:
    case Opcode::kAtomSAdd:
    case Opcode::kAtomGExch:
      if (ops.size() == 3) {
        if (auto e = reg_at(0, inst.dst)) return e;
        if (auto e = mem_at(1)) return e;
        if (auto e = reg_at(2, inst.src1)) return e;
      } else {
        if (auto e = want(2)) return e;
        if (auto e = mem_at(0)) return e;
        if (auto e = reg_at(1, inst.src1)) return e;
      }
      break;

    case Opcode::kAtomGCas:
    case Opcode::kAtomSCas:
      // "atom.cas [dst,] [rA+off], rCmp, rNew"
      if (ops.size() == 4) {
        if (auto e = reg_at(0, inst.dst)) return e;
        if (auto e = mem_at(1)) return e;
        if (auto e = reg_at(2, inst.src1)) return e;
        if (auto e = reg_at(3, inst.src2)) return e;
      } else {
        if (auto e = want(3)) return e;
        if (auto e = mem_at(0)) return e;
        if (auto e = reg_at(1, inst.src1)) return e;
        if (auto e = reg_at(2, inst.src2)) return e;
      }
      break;

    case Opcode::kBra: {
      // "bra target" or "@rN bra target !reconv"; reconv may also follow an
      // unconditional bra (ignored semantically but preserved).
      PendingBranch pending;
      pending.pc = static_cast<int>(st.program.code.size());
      pending.line = line_no;
      // Operands may be space- or comma-separated; re-tokenize on spaces too.
      std::vector<std::string> parts;
      for (const std::string& o : ops) {
        std::istringstream iss(o);
        std::string piece;
        while (iss >> piece) parts.push_back(piece);
      }
      if (parts.empty()) return err(line_no, "bra requires a target");
      if (!parse_target(parts[0], pending.target))
        return err(line_no, "bad branch target '" + parts[0] + "'");
      if (parts.size() >= 2) {
        if (parts[1].empty() || parts[1][0] != '!')
          return err(line_no, "reconvergence ref must start with '!'");
        if (!parse_target(parts[1].substr(1), pending.reconv))
          return err(line_no, "bad reconvergence ref '" + parts[1] + "'");
        pending.has_reconv = true;
      }
      if (inst.pred != kNoReg && !pending.has_reconv)
        return err(line_no, "conditional bra requires '!reconv'");
      st.branches.push_back(pending);
      break;
    }

    default:
      // Two-source ALU ops (iadd .. setp, fadd, fmul, fdiv).
      if (auto e = want(3)) return e;
      if (auto e = reg_at(0, inst.dst)) return e;
      if (auto e = reg_at(1, inst.src0)) return e;
      if (auto e = reg_or_imm_at(2)) return e;
      break;
  }

  if (info.has_dst) note_reg(st, inst.dst);
  st.program.code.push_back(inst);
  return std::nullopt;
}

}  // namespace

AssembleResult assemble(const std::string& source) {
  ParseState st;
  st.program.info.name = "anonymous";

  std::istringstream stream(source);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string line = trim(strip_comment(raw_line));
    if (line.empty()) continue;

    if (line[0] == '.') {
      if (auto e = handle_directive(st, line_no, line)) return *e;
      continue;
    }

    // Leading "label:" (possibly followed by an instruction on same line).
    // A ':' inside operands never occurs in this ISA, so a ':' before any
    // whitespace means a label.
    std::size_t colon = line.find(':');
    std::size_t space = line.find_first_of(" \t");
    if (colon != std::string::npos &&
        (space == std::string::npos || colon < space)) {
      std::string label = trim(line.substr(0, colon));
      if (label.empty()) return AssemblerError{line_no, "empty label"};
      if (st.labels.count(label))
        return AssemblerError{line_no, "duplicate label '" + label + "'"};
      st.labels[label] = static_cast<int>(st.program.code.size());
      line = trim(line.substr(colon + 1));
      if (line.empty()) continue;
    }

    if (auto e = handle_instruction(st, line_no, line)) return *e;
  }

  // Resolve branch targets.
  const int n = static_cast<int>(st.program.code.size());
  auto resolve = [&](const TargetRef& ref, int line,
                     int& out) -> std::optional<AssemblerError> {
    if (ref.raw_pc >= 0) {
      if (ref.raw_pc >= n)
        return err(line, "branch pc out of range");
      out = ref.raw_pc;
      return std::nullopt;
    }
    auto it = st.labels.find(ref.label);
    if (it == st.labels.end())
      return err(line, "undefined label '" + ref.label + "'");
    out = it->second;
    return std::nullopt;
  };
  for (const PendingBranch& b : st.branches) {
    int target = -1;
    if (auto e = resolve(b.target, b.line, target)) return *e;
    st.program.code[b.pc].target = target;
    if (b.has_reconv) {
      int reconv = -1;
      if (auto e = resolve(b.reconv, b.line, reconv)) return *e;
      st.program.code[b.pc].reconv = reconv;
    }
  }

  if (!st.explicit_regs)
    st.program.info.regs_per_thread = std::max(1, st.max_reg_used + 1);

  const std::string error = st.program.validate();
  if (!error.empty()) return AssemblerError{0, "validation: " + error};
  return st.program;
}

Program assemble_or_die(const std::string& source) {
  AssembleResult result = assemble(source);
  if (auto* error = std::get_if<AssemblerError>(&result)) {
    std::fprintf(stderr, "assembly failed at line %d: %s\n", error->line,
                 error->message.c_str());
    std::abort();
  }
  return std::move(std::get<Program>(result));
}

}  // namespace prosim
