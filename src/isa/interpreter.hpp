// Scalar reference interpreter — the golden model.
//
// Executes a whole grid with no timing, no warps and no SIMT stack: thread
// blocks run sequentially, and within a block the threads advance
// round-robin one instruction at a time, honoring barriers. For kernels
// whose result is schedule-independent (all of ours: cross-thread
// communication only through barriers or commutative atomics), the final
// registers and memory must match any valid execution — including the
// timing simulator's, under every warp scheduler. Property tests rely on
// this.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hpp"
#include "mem/global_memory.hpp"

namespace prosim {

struct InterpreterResult {
  std::uint64_t instructions_executed = 0;
  /// Final registers, indexed [ctaid][tid][reg].
  std::vector<std::vector<std::vector<RegValue>>> registers;
};

struct InterpreterOptions {
  /// Abort if any single thread block exceeds this many instructions —
  /// catches accidental infinite loops in workload kernels.
  std::uint64_t max_steps_per_tb = 100'000'000;
  /// Record per-thread final register state (tests); memory is always
  /// mutated in place.
  bool record_registers = true;
};

/// Runs `program` against `memory`; aborts (PROSIM_CHECK) on malformed
/// programs, barrier deadlocks, or step-limit overruns.
InterpreterResult interpret(const Program& program, GlobalMemory& memory,
                            const InterpreterOptions& options = {});

}  // namespace prosim
