// The mini SASS-like instruction set executed by the simulator.
//
// Opcodes are grouped by the functional unit that executes them (SP integer
// ALU, SP floating-point pipe, SFU, LDST) because that is what the timing
// model cares about. Functional semantics operate on 64-bit integer
// registers; the "floating point" opcodes keep their FP-unit latencies but
// compute deterministic integer functions, which keeps the golden-model
// comparison exact (see DESIGN.md, "Known simplifications").
#pragma once

#include <cstdint>
#include <string_view>

namespace prosim {

enum class Opcode : std::uint8_t {
  kNop = 0,
  // Register moves / special registers (SP).
  kMov,
  kMovi,
  kS2r,
  // Integer ALU (SP).
  kIadd,
  kIsub,
  kImul,
  kImad,
  kImin,
  kImax,
  kIand,
  kIor,
  kIxor,
  kIshl,
  kIshr,
  kSetp,
  kSel,
  // FP latency classes (SP FP pipe).
  kFadd,
  kFmul,
  kFfma,
  // Special function unit.
  kFdiv,
  kRsqrt,
  kFsin,
  kFexp,
  kFlog,
  // Memory (LDST).
  kLdg,
  kStg,
  kLds,
  kSts,
  kLdc,
  kAtomGAdd,
  kAtomSAdd,
  // Control.
  kBra,
  kBar,
  kExit,

  kNumOpcodes,
};

enum class CmpOp : std::uint8_t { kLt = 0, kLe, kGt, kGe, kEq, kNe };

enum class SpecialReg : std::uint8_t {
  kTid = 0,    // thread index within the TB
  kCtaId,      // TB index within the grid
  kNTid,       // threads per TB
  kNCtaId,     // TBs in the grid
  kWarpId,     // warp index within the TB
  kLaneId,     // lane within the warp
  kGlobalTid,  // ctaid * ntid + tid
};

/// Which execution pipeline an opcode issues to.
enum class FuType : std::uint8_t {
  kSpInt,   // integer ALU pipe
  kSpFp,    // FP pipe (same issue port as SpInt, longer latency)
  kSfu,     // special function unit
  kMem,     // load/store unit
  kControl  // branches / barrier / exit (resolved at issue)
};

/// Memory space addressed by a memory opcode.
enum class MemSpace : std::uint8_t { kNone, kGlobal, kShared, kConst };

/// Static properties of an opcode, used by decode, the timing model and the
/// assembler/disassembler.
struct OpcodeInfo {
  std::string_view mnemonic;
  FuType fu;
  MemSpace space;
  bool has_dst;
  std::uint8_t num_srcs;  // register sources read (excludes address regs)
  bool is_branch;
  bool is_barrier;
  bool is_exit;
  bool is_atomic;
  bool is_load;   // holds the scoreboard until data returns
  bool is_store;  // fire-and-forget write
};

const OpcodeInfo& opcode_info(Opcode op);

std::string_view cmp_name(CmpOp cmp);
std::string_view sreg_name(SpecialReg sreg);

/// Parses a mnemonic; returns kNumOpcodes on failure.
Opcode parse_opcode(std::string_view mnemonic);
bool parse_cmp(std::string_view name, CmpOp& out);
bool parse_sreg(std::string_view name, SpecialReg& out);

}  // namespace prosim
