// The mini SASS-like instruction set executed by the simulator.
//
// Opcodes are grouped by the functional unit that executes them (SP integer
// ALU, SP floating-point pipe, SFU, LDST) because that is what the timing
// model cares about. Functional semantics operate on 64-bit integer
// registers; the "floating point" opcodes keep their FP-unit latencies but
// compute deterministic integer functions, which keeps the golden-model
// comparison exact (see DESIGN.md, "Known simplifications").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.hpp"

namespace prosim {

enum class Opcode : std::uint8_t {
  kNop = 0,
  // Register moves / special registers (SP).
  kMov,
  kMovi,
  kS2r,
  // Integer ALU (SP).
  kIadd,
  kIsub,
  kImul,
  kImad,
  kImin,
  kImax,
  kIand,
  kIor,
  kIxor,
  kIshl,
  kIshr,
  kSetp,
  kSel,
  // FP latency classes (SP FP pipe).
  kFadd,
  kFmul,
  kFfma,
  // Special function unit.
  kFdiv,
  kRsqrt,
  kFsin,
  kFexp,
  kFlog,
  // Memory (LDST).
  kLdg,
  kStg,
  kLds,
  kSts,
  kLdc,
  kAtomGAdd,
  kAtomGCas,
  kAtomGExch,
  kAtomSAdd,
  kAtomSCas,
  // Control.
  kBra,
  kBar,
  kExit,

  kNumOpcodes,
};

enum class CmpOp : std::uint8_t { kLt = 0, kLe, kGt, kGe, kEq, kNe };

enum class SpecialReg : std::uint8_t {
  kTid = 0,    // thread index within the TB
  kCtaId,      // TB index within the grid
  kNTid,       // threads per TB
  kNCtaId,     // TBs in the grid
  kWarpId,     // warp index within the TB
  kLaneId,     // lane within the warp
  kGlobalTid,  // ctaid * ntid + tid
};

/// Which execution pipeline an opcode issues to.
enum class FuType : std::uint8_t {
  kSpInt,   // integer ALU pipe
  kSpFp,    // FP pipe (same issue port as SpInt, longer latency)
  kSfu,     // special function unit
  kMem,     // load/store unit
  kControl  // branches / barrier / exit (resolved at issue)
};

/// Memory space addressed by a memory opcode.
enum class MemSpace : std::uint8_t { kNone, kGlobal, kShared, kConst };

/// Static properties of an opcode, used by decode, the timing model and the
/// assembler/disassembler.
struct OpcodeInfo {
  std::string_view mnemonic;
  FuType fu;
  MemSpace space;
  bool has_dst;
  std::uint8_t num_srcs;  // register sources read (excludes address regs)
  bool is_branch;
  bool is_barrier;
  bool is_exit;
  bool is_atomic;
  bool is_load;   // holds the scoreboard until data returns
  bool is_store;  // fire-and-forget write
};

namespace detail {

// One row per opcode, indexed by the enum value. Lives in the header so
// opcode_info() inlines into the issue loop — it runs hundreds of millions
// of times per simulation.
// {mnemonic, fu, space, has_dst, num_srcs, branch, barrier, exit, atomic,
//  load, store}
inline constexpr OpcodeInfo
    kOpcodeTable[static_cast<std::size_t>(Opcode::kNumOpcodes)] = {
        {"nop", FuType::kSpInt, MemSpace::kNone, false, 0, false, false,
         false, false, false, false},
        {"mov", FuType::kSpInt, MemSpace::kNone, true, 1, false, false, false,
         false, false, false},
        {"movi", FuType::kSpInt, MemSpace::kNone, true, 0, false, false,
         false, false, false, false},
        {"s2r", FuType::kSpInt, MemSpace::kNone, true, 0, false, false, false,
         false, false, false},
        {"iadd", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"isub", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"imul", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"imad", FuType::kSpInt, MemSpace::kNone, true, 3, false, false,
         false, false, false, false},
        {"imin", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"imax", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"iand", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"ior", FuType::kSpInt, MemSpace::kNone, true, 2, false, false, false,
         false, false, false},
        {"ixor", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"ishl", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"ishr", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"setp", FuType::kSpInt, MemSpace::kNone, true, 2, false, false,
         false, false, false, false},
        {"sel", FuType::kSpInt, MemSpace::kNone, true, 3, false, false, false,
         false, false, false},
        {"fadd", FuType::kSpFp, MemSpace::kNone, true, 2, false, false, false,
         false, false, false},
        {"fmul", FuType::kSpFp, MemSpace::kNone, true, 2, false, false, false,
         false, false, false},
        {"ffma", FuType::kSpFp, MemSpace::kNone, true, 3, false, false, false,
         false, false, false},
        {"fdiv", FuType::kSfu, MemSpace::kNone, true, 2, false, false, false,
         false, false, false},
        {"rsqrt", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
         false, false, false},
        {"fsin", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
         false, false, false},
        {"fexp", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
         false, false, false},
        {"flog", FuType::kSfu, MemSpace::kNone, true, 1, false, false, false,
         false, false, false},
        {"ldg", FuType::kMem, MemSpace::kGlobal, true, 0, false, false, false,
         false, true, false},
        {"stg", FuType::kMem, MemSpace::kGlobal, false, 1, false, false,
         false, false, false, true},
        {"lds", FuType::kMem, MemSpace::kShared, true, 0, false, false, false,
         false, true, false},
        {"sts", FuType::kMem, MemSpace::kShared, false, 1, false, false,
         false, false, false, true},
        {"ldc", FuType::kMem, MemSpace::kConst, true, 0, false, false, false,
         false, true, false},
        {"atomg.add", FuType::kMem, MemSpace::kGlobal, false, 1, false, false,
         false, true, false, true},
        {"atomg.cas", FuType::kMem, MemSpace::kGlobal, false, 2, false, false,
         false, true, false, true},
        {"atomg.exch", FuType::kMem, MemSpace::kGlobal, false, 1, false,
         false, false, true, false, true},
        {"atoms.add", FuType::kMem, MemSpace::kShared, false, 1, false, false,
         false, true, false, true},
        {"atoms.cas", FuType::kMem, MemSpace::kShared, false, 2, false, false,
         false, true, false, true},
        {"bra", FuType::kControl, MemSpace::kNone, false, 0, true, false,
         false, false, false, false},
        {"bar", FuType::kControl, MemSpace::kNone, false, 0, false, true,
         false, false, false, false},
        {"exit", FuType::kControl, MemSpace::kNone, false, 0, false, false,
         true, false, false, false},
};

}  // namespace detail

/// Static properties for `op`. The bounds check stays on even in release
/// builds (one perfectly-predicted branch) — a corrupt opcode must abort,
/// not index junk.
inline const OpcodeInfo& opcode_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  PROSIM_CHECK(idx < static_cast<std::size_t>(Opcode::kNumOpcodes));
  return detail::kOpcodeTable[idx];
}

std::string_view cmp_name(CmpOp cmp);
std::string_view sreg_name(SpecialReg sreg);

/// Parses a mnemonic; returns kNumOpcodes on failure.
Opcode parse_opcode(std::string_view mnemonic);
bool parse_cmp(std::string_view name, CmpOp& out);
bool parse_sreg(std::string_view name, SpecialReg& out);

}  // namespace prosim
