// Two-pass text assembler for the mini ISA.
//
// Syntax (one instruction per line; ';' and '//' start comments):
//
//   .kernel scalar_prod        ; kernel name
//   .blockdim 128              ; threads per TB
//   .grid 64                   ; TBs in the grid
//   .regs 24                   ; optional; auto-sized if omitted
//   .smem 4096                 ; shared memory bytes per TB
//
//       s2r r0, %tid
//       movi r1, 0
//   top:
//       ldg r2, [r3+16]
//       iadd r1, r1, r2
//       setp.lt r4, r1, #100
//       @r4 bra top !after     ; conditional branch, reconvergence at 'after'
//   after:
//       bar
//       exit
//
// Conditional branches require a reconvergence label ('!label'); predicates
// are '@rN' (taken when != 0) or '@!rN' (taken when == 0). Unconditional
// 'bra label' needs no reconvergence point. Raw numeric targets ('@12') are
// accepted so that disassembler output re-assembles.
#pragma once

#include <string>
#include <variant>

#include "isa/program.hpp"

namespace prosim {

struct AssemblerError {
  int line = 0;          // 1-based source line
  std::string message;
};

/// Either a program or the first error encountered.
using AssembleResult = std::variant<Program, AssemblerError>;

AssembleResult assemble(const std::string& source);

/// Convenience wrapper that aborts on assembly errors; for tests and
/// statically-known-good sources.
Program assemble_or_die(const std::string& source);

}  // namespace prosim
