#include "isa/program.hpp"

#include <sstream>

namespace prosim {

namespace {

bool reg_ok(std::uint8_t r, int regs_per_thread) {
  return r == kNoReg || r < regs_per_thread;
}

}  // namespace

std::string Program::validate() const {
  std::ostringstream err;
  if (code.empty()) return "program has no instructions";
  if (info.block_dim < 1 || info.block_dim > 1024)
    return "block_dim out of range [1,1024]";
  if (info.grid_dim < 1) return "grid_dim must be >= 1";
  if (info.regs_per_thread < 1 || info.regs_per_thread > kMaxRegs)
    return "regs_per_thread out of range";
  if (info.smem_bytes < 0) return "negative smem_bytes";

  const Instruction& last = code.back();
  const bool ends_ok =
      last.op == Opcode::kExit ||
      (last.op == Opcode::kBra && last.pred == kNoReg);
  if (!ends_ok) {
    return "program must end in exit or an unconditional branch";
  }

  const auto n = static_cast<std::int32_t>(code.size());
  for (std::int32_t pc = 0; pc < n; ++pc) {
    const Instruction& inst = code[pc];
    const OpcodeInfo& oi = inst.info();
    if (oi.mnemonic.empty() || inst.op >= Opcode::kNumOpcodes) {
      err << "pc " << pc << ": invalid opcode";
      return err.str();
    }
    if (inst.op == Opcode::kBra) {
      if (inst.target < 0 || inst.target >= n) {
        err << "pc " << pc << ": branch target " << inst.target
            << " out of range";
        return err.str();
      }
      if (inst.pred != kNoReg) {
        if (inst.reconv < 0 || inst.reconv >= n) {
          err << "pc " << pc << ": reconvergence pc " << inst.reconv
              << " out of range";
          return err.str();
        }
        if (!reg_ok(inst.pred, info.regs_per_thread)) {
          err << "pc " << pc << ": predicate register out of range";
          return err.str();
        }
      }
    }
    if (oi.has_dst && !reg_ok(inst.dst, info.regs_per_thread)) {
      err << "pc " << pc << ": dst register out of range";
      return err.str();
    }
    for (std::uint8_t r : {inst.src0, inst.src1, inst.src2}) {
      if (!reg_ok(r, info.regs_per_thread)) {
        err << "pc " << pc << ": source register out of range";
        return err.str();
      }
    }
  }
  return "";
}

std::string Program::disassemble_all() const {
  std::ostringstream out;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    out << pc << ":\t" << disassemble(code[pc]) << "\n";
  }
  return out.str();
}

}  // namespace prosim
