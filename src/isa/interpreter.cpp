#include "isa/interpreter.hpp"

#include "common/check.hpp"
#include "isa/semantics.hpp"

namespace prosim {

namespace {

struct ThreadCtx {
  std::vector<RegValue> regs;
  std::int32_t pc = 0;
  bool done = false;
  bool at_barrier = false;
};

class TbRun {
 public:
  TbRun(const Program& program, GlobalMemory& memory, int ctaid,
        const InterpreterOptions& options)
      : program_(program),
        memory_(memory),
        options_(options),
        ctaid_(ctaid),
        smem_(static_cast<std::size_t>(program.info.smem_bytes + 7) / 8, 0) {
    threads_.resize(program.info.block_dim);
    for (auto& t : threads_)
      t.regs.assign(program.info.regs_per_thread, 0);
  }

  std::uint64_t run() {
    std::uint64_t steps = 0;
    int live = program_.info.block_dim;
    while (live > 0) {
      int blocked = 0;
      for (int tid = 0; tid < program_.info.block_dim; ++tid) {
        ThreadCtx& t = threads_[tid];
        if (t.done) continue;
        if (t.at_barrier) {
          ++blocked;
          continue;
        }
        step(tid, t);
        ++steps;
        PROSIM_CHECK_MSG(steps <= options_.max_steps_per_tb,
                         "thread block exceeded step limit (infinite loop?)");
        if (t.done) --live;
        if (t.at_barrier) ++blocked;
      }
      // Barrier semantics (matches the timing model): the barrier releases
      // once every still-live thread of the block is waiting at it.
      if (live > 0 && blocked == live) {
        for (auto& t : threads_)
          if (!t.done) t.at_barrier = false;
      }
    }
    return steps;
  }

  const std::vector<ThreadCtx>& threads() const { return threads_; }

 private:

  void step(int tid, ThreadCtx& t) {
    PROSIM_CHECK(t.pc >= 0 &&
                 t.pc < static_cast<std::int32_t>(program_.code.size()));
    const Instruction& inst = program_.code[t.pc];
    const ThreadGeom geom{tid, ctaid_, program_.info.block_dim,
                          program_.info.grid_dim};

    auto src1_val = [&]() -> RegValue {
      // Single-source ALU/SFU ops leave src1 = kNoReg; read as 0 like the
      // timing model's reg_or_zero (eval_alu ignores the operand anyway).
      if (inst.src1_is_imm) return inst.imm;
      return inst.src1 != kNoReg ? t.regs[inst.src1] : 0;
    };
    auto mem_addr = [&]() -> Addr {
      return static_cast<Addr>(
          static_cast<std::uint64_t>(t.regs[inst.src0]) +
          static_cast<std::uint64_t>(inst.imm));
    };

    std::int32_t next_pc = t.pc + 1;
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMov:
        t.regs[inst.dst] = t.regs[inst.src0];
        break;
      case Opcode::kMovi:
        t.regs[inst.dst] = inst.imm;
        break;
      case Opcode::kS2r:
        t.regs[inst.dst] = eval_sreg(inst.sreg, geom);
        break;
      case Opcode::kLdg:
      case Opcode::kLdc:
        t.regs[inst.dst] = memory_.load(mem_addr());
        break;
      case Opcode::kStg:
        memory_.store(mem_addr(), t.regs[inst.src1]);
        break;
      case Opcode::kLds:
        t.regs[inst.dst] = smem_load(mem_addr());
        break;
      case Opcode::kSts:
        smem_store(mem_addr(), t.regs[inst.src1]);
        break;
      case Opcode::kAtomGAdd: {
        const RegValue old = memory_.atomic_add(mem_addr(), t.regs[inst.src1]);
        if (inst.dst != kNoReg) t.regs[inst.dst] = old;
        break;
      }
      case Opcode::kAtomSAdd: {
        const Addr addr = mem_addr();
        const RegValue old = smem_load(addr);
        smem_store(addr, static_cast<RegValue>(
                             static_cast<std::uint64_t>(old) +
                             static_cast<std::uint64_t>(t.regs[inst.src1])));
        if (inst.dst != kNoReg) t.regs[inst.dst] = old;
        break;
      }
      case Opcode::kAtomGCas: {
        const RegValue old = memory_.atomic_cas(
            mem_addr(), t.regs[inst.src1], t.regs[inst.src2]);
        if (inst.dst != kNoReg) t.regs[inst.dst] = old;
        break;
      }
      case Opcode::kAtomGExch: {
        const RegValue old =
            memory_.atomic_exch(mem_addr(), t.regs[inst.src1]);
        if (inst.dst != kNoReg) t.regs[inst.dst] = old;
        break;
      }
      case Opcode::kAtomSCas: {
        const Addr addr = mem_addr();
        const RegValue old = smem_load(addr);
        if (old == t.regs[inst.src1]) smem_store(addr, t.regs[inst.src2]);
        if (inst.dst != kNoReg) t.regs[inst.dst] = old;
        break;
      }
      case Opcode::kBra: {
        bool taken = true;
        if (inst.pred != kNoReg) {
          const bool p = t.regs[inst.pred] != 0;
          taken = inst.pred_invert ? !p : p;
        }
        if (taken) next_pc = inst.target;
        break;
      }
      case Opcode::kBar:
        t.at_barrier = true;
        break;
      case Opcode::kExit:
        t.done = true;
        break;
      default:
        t.regs[inst.dst] =
            eval_alu(inst, t.regs[inst.src0], src1_val(),
                     inst.src2 != kNoReg ? t.regs[inst.src2] : 0);
        break;
    }
    t.pc = next_pc;
  }

  RegValue smem_load(Addr addr) const {
    PROSIM_CHECK_MSG((addr & 7) == 0, "unaligned shared-memory access");
    const std::size_t word = addr >> 3;
    PROSIM_CHECK_MSG(word < smem_.size(), "shared-memory access out of range");
    return smem_[word];
  }

  void smem_store(Addr addr, RegValue value) {
    PROSIM_CHECK_MSG((addr & 7) == 0, "unaligned shared-memory access");
    const std::size_t word = addr >> 3;
    PROSIM_CHECK_MSG(word < smem_.size(), "shared-memory access out of range");
    smem_[word] = value;
  }

  const Program& program_;
  GlobalMemory& memory_;
  const InterpreterOptions& options_;
  int ctaid_;
  std::vector<RegValue> smem_;
  std::vector<ThreadCtx> threads_;
};

}  // namespace

InterpreterResult interpret(const Program& program, GlobalMemory& memory,
                            const InterpreterOptions& options) {
  const std::string error = program.validate();
  PROSIM_CHECK_MSG(error.empty(), error.c_str());

  InterpreterResult result;
  if (options.record_registers) result.registers.resize(program.info.grid_dim);

  for (int ctaid = 0; ctaid < program.info.grid_dim; ++ctaid) {
    TbRun tb(program, memory, ctaid, options);
    result.instructions_executed += tb.run();
    if (options.record_registers) {
      auto& block = result.registers[ctaid];
      block.reserve(tb.threads().size());
      for (const ThreadCtx& t : tb.threads()) block.push_back(t.regs);
    }
  }
  return result;
}

}  // namespace prosim
